package remotestore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// transport is the raw HTTP edge shared by the single-node Client and the
// sharded Cluster: one store node's /kv and /keys endpoints, context-aware
// so callers can cancel in-flight network I/O. It holds no policy — no
// caching, codecs, offline queues, or retries — just the wire protocol and
// the transport/application error split.
type transport struct {
	base string
	http *http.Client
}

func (t *transport) put(ctx context.Context, key string, encoded []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, t.base+"/kv/"+key, bytes.NewReader(encoded))
	if err != nil {
		return fmt.Errorf("remotestore: build put: %w", err)
	}
	resp, err := t.http.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		if resp.StatusCode == http.StatusServiceUnavailable {
			return &transportError{&remoteError{status: resp.StatusCode, msg: "put"}}
		}
		return &remoteError{status: resp.StatusCode, msg: "put"}
	}
	return nil
}

func (t *transport) get(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/kv/"+key, nil)
	if err != nil {
		return nil, fmt.Errorf("remotestore: build get: %w", err)
	}
	resp, err := t.http.Do(req)
	if err != nil {
		return nil, &transportError{err}
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	case http.StatusServiceUnavailable:
		return nil, &transportError{&remoteError{status: resp.StatusCode, msg: "get"}}
	default:
		return nil, &remoteError{status: resp.StatusCode, msg: "get"}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remotestore: read body: %w", err)
	}
	return data, nil
}

func (t *transport) del(ctx context.Context, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, t.base+"/kv/"+key, nil)
	if err != nil {
		return fmt.Errorf("remotestore: build delete: %w", err)
	}
	resp, err := t.http.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		if resp.StatusCode == http.StatusServiceUnavailable {
			return &transportError{&remoteError{status: resp.StatusCode, msg: "delete"}}
		}
		return &remoteError{status: resp.StatusCode, msg: "delete"}
	}
	return nil
}

func (t *transport) keys(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/keys", nil)
	if err != nil {
		return nil, fmt.Errorf("remotestore: build keys: %w", err)
	}
	resp, err := t.http.Do(req)
	if err != nil {
		return nil, &transportError{err}
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusServiceUnavailable {
			return nil, &transportError{&remoteError{status: resp.StatusCode, msg: "keys"}}
		}
		return nil, &remoteError{status: resp.StatusCode, msg: "keys"}
	}
	var keys []string
	if err := jsonDecode(resp.Body, &keys); err != nil {
		return nil, err
	}
	return keys, nil
}

// transportError marks failures that indicate lost connectivity (as opposed
// to application errors like 404).
type transportError struct{ err error }

func (t *transportError) Error() string { return "remotestore: transport: " + t.err.Error() }
func (t *transportError) Unwrap() error { return t.err }

func isTransport(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

func jsonDecode(r io.Reader, v any) error {
	if err := json.NewDecoder(io.LimitReader(r, 16<<20)).Decode(v); err != nil {
		return fmt.Errorf("remotestore: decode: %w", err)
	}
	return nil
}
