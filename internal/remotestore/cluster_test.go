package remotestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/kvstore"
	"repro/internal/metrics"
)

// testCluster bundles N store nodes with a sharded client over them. The
// per-node backing stores stay visible so tests can assert exactly where
// replicas landed.
type testCluster struct {
	servers []*Server
	stores  []kvstore.Store
	urls    []string
	cl      *Cluster
}

// fastRetry keeps failure paths quick and deterministic in unit tests.
var fastRetry = failover.RetryPolicy{MaxAttempts: 1}

func newTestCluster(t *testing.T, n int, mod func(*ClusterConfig)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		st := kvstore.NewMemory()
		srv := NewServer(st)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		tc.stores = append(tc.stores, st)
		tc.servers = append(tc.servers, srv)
		tc.urls = append(tc.urls, hs.URL)
	}
	cfg := ClusterConfig{
		Nodes:    tc.urls,
		Replicas: 2,
		Seed:     1,
		Retry:    fastRetry,
		Breaker:  core.BreakerConfig{Threshold: -1}, // off unless a test opts in
	}
	if mod != nil {
		mod(&cfg)
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	tc.cl = cl
	return tc
}

// nodeIndex maps a node URL back to its slot in the fixture.
func (tc *testCluster) nodeIndex(url string) int {
	for i, u := range tc.urls {
		if u == url {
			return i
		}
	}
	return -1
}

// holders returns which node indices have key in their backing store.
func (tc *testCluster) holders(key string) []int {
	var out []int
	for i, st := range tc.stores {
		if _, err := st.Get(key); err == nil {
			out = append(out, i)
		}
	}
	return out
}

func TestClusterRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("value-%d", i))
		if err := tc.cl.Put(k, v); err != nil {
			t.Fatal(err)
		}
		got, err := tc.cl.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%s) = (%q, %v)", k, got, err)
		}
	}
	if err := tc.cl.Delete("key-3"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.cl.Get("key-3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete Get = %v, want ErrNotFound", err)
	}
}

func TestClusterReplicatesToOwners(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := tc.cl.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		owners := tc.cl.owners(k)
		if len(owners) != 2 {
			t.Fatalf("owners(%s) = %v, want 2", k, owners)
		}
		holders := tc.holders(k)
		if len(holders) != 2 {
			t.Fatalf("key %s held by %d nodes %v, want exactly its 2 owners", k, len(holders), holders)
		}
		for _, h := range holders {
			found := false
			for _, o := range owners {
				if tc.nodeIndex(o) == h {
					found = true
				}
			}
			if !found {
				t.Fatalf("key %s landed on node %d, not in owner set %v", k, h, owners)
			}
		}
	}
}

func TestClusterReadFailover(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) { c.CacheSize = 0 })
	key := "failover-key"
	if err := tc.cl.Put(key, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	primary := tc.cl.owners(key)[0]
	tc.servers[tc.nodeIndex(primary)].SetDown(true)
	got, err := tc.cl.Get(key)
	if err != nil || string(got) != "survives" {
		t.Fatalf("Get with primary down = (%q, %v)", got, err)
	}
	if tc.cl.Stats().ReadFailovers == 0 {
		t.Error("ReadFailovers not counted")
	}
	if tc.cl.Offline() {
		t.Error("a single dead replica must not flip the whole cluster client offline")
	}
}

func TestClusterNotFoundConsultsAllReplicas(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	key := "quorum-miss"
	// Simulate a write the primary missed (W<R world): plant the encoded
	// value only on the second owner.
	owners := tc.cl.owners(key)
	if err := tc.stores[tc.nodeIndex(owners[1])].Put(key, []byte("only-here")); err != nil {
		t.Fatal(err)
	}
	got, err := tc.cl.Get(key)
	if err != nil || string(got) != "only-here" {
		t.Fatalf("Get = (%q, %v); a primary miss must fall through to the replica", got, err)
	}
	// A key on no replica is authoritatively absent.
	if _, err := tc.cl.Get("really-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestClusterWriteQuorumOne(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) {
		c.WriteQuorum = 1
		c.CacheSize = 0
	})
	key := "w1-key"
	// One of the two owners is down; W=1 still succeeds via the other.
	tc.servers[tc.nodeIndex(tc.cl.owners(key)[0])].SetDown(true)
	if err := tc.cl.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if tc.cl.Offline() {
		t.Fatal("W=1 write with one live owner must not go offline")
	}
	got, err := tc.cl.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
}

func TestClusterQuorumLossQueuesWrite(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) { c.Local = kvstore.NewMemory() })
	for _, srv := range tc.servers {
		srv.SetDown(true)
	}
	if err := tc.cl.Put("k", []byte("queued")); err != nil {
		t.Fatalf("quorum-less Put = %v, want nil (queued)", err)
	}
	if !tc.cl.Offline() {
		t.Fatal("client should be offline after quorum loss")
	}
	if got := tc.cl.PendingWrites(); got != 1 {
		t.Fatalf("PendingWrites = %d, want 1", got)
	}
	// Local mirror still serves the read while offline.
	got, err := tc.cl.Get("k")
	if err != nil || string(got) != "queued" {
		t.Fatalf("offline Get = (%q, %v)", got, err)
	}
	for _, srv := range tc.servers {
		srv.SetDown(false)
	}
	pushed, err := tc.cl.Sync()
	if err != nil || pushed != 1 {
		t.Fatalf("Sync = (%d, %v), want (1, nil)", pushed, err)
	}
	if len(tc.holders("k")) != 2 {
		t.Fatalf("after sync key held by %v, want its 2 owners", tc.holders("k"))
	}
}

func TestClusterSyncPipelinesPerNode(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) { c.Local = kvstore.NewMemory() })
	tc.cl.SetOffline(true)
	const n = 40
	for i := 0; i < n; i++ {
		if err := tc.cl.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a few keys while offline; coalescing keeps one entry each.
	for i := 0; i < 5; i++ {
		if err := tc.cl.Put(fmt.Sprintf("key-%02d", i), []byte("final")); err != nil {
			t.Fatal(err)
		}
	}
	if got := tc.cl.PendingWrites(); got != n {
		t.Fatalf("PendingWrites = %d, want %d", got, n)
	}
	pushed, err := tc.cl.Sync()
	if err != nil || pushed != n {
		t.Fatalf("Sync = (%d, %v), want (%d, nil)", pushed, err, n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if len(tc.holders(k)) != 2 {
			t.Fatalf("key %s on %v nodes after sync, want 2", k, tc.holders(k))
		}
		want := fmt.Sprintf("v%d", i)
		if i < 5 {
			want = "final"
		}
		got, gerr := tc.cl.Get(k)
		if gerr != nil || string(got) != want {
			t.Fatalf("Get(%s) = (%q, %v), want %q", k, got, gerr, want)
		}
	}
}

func TestClusterSyncFailureRequeues(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *ClusterConfig) { c.Local = kvstore.NewMemory() })
	tc.cl.SetOffline(true)
	for i := 0; i < 6; i++ {
		if err := tc.cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// R=2 over 2 nodes: every write needs both; one down means no write
	// reaches quorum.
	tc.servers[0].SetDown(true)
	pushed, err := tc.cl.Sync()
	if err == nil {
		t.Fatal("Sync with a node down should report the below-quorum writes")
	}
	if pushed != 0 {
		t.Fatalf("pushed = %d, want 0", pushed)
	}
	if got := tc.cl.PendingWrites(); got != 6 {
		t.Fatalf("PendingWrites = %d, want 6 (all requeued)", got)
	}
	if !tc.cl.Offline() {
		t.Fatal("client should be back offline after failed sync")
	}
	tc.servers[0].SetDown(false)
	if pushed, err = tc.cl.Sync(); err != nil || pushed != 6 {
		t.Fatalf("recovery Sync = (%d, %v), want (6, nil)", pushed, err)
	}
}

func TestClusterKeysMergeSortedDeduped(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	want := make([]string, 0, 25)
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("key-%02d", i)
		want = append(want, k)
		if err := tc.cl.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tc.cl.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Keys() not sorted: %v", got)
	}
	if len(got) != len(want) {
		t.Fatalf("Keys() = %d keys %v, want %d — replicas must de-duplicate", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestClusterKeysMergeToleratesNodeError(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	for i := 0; i < 25; i++ {
		if err := tc.cl.Put(fmt.Sprintf("key-%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// R=2: one node returning transport errors mid-merge must not lose
	// keys (every key has a live replica) and must not error the call.
	tc.servers[2].SetDown(true)
	got, err := tc.cl.Keys()
	if err != nil {
		t.Fatalf("Keys with one node down = %v", err)
	}
	if len(got) != 25 {
		t.Fatalf("Keys with one node down returned %d keys, want 25", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("merge not sorted: %v", got)
	}
	// Two nodes down (= R) can orphan keys; the merge must refuse to
	// pretend it is complete.
	tc.servers[0].SetDown(true)
	if _, err := tc.cl.Keys(); err == nil {
		t.Fatal("Keys with R nodes down should fail rather than return a silently incomplete merge")
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted([][]string{
		{"a", "c", "e"},
		{"b", "c", "d"},
		{},
		{"a", "e", "f"},
	})
	want := []string{"a", "b", "c", "d", "e", "f"}
	if len(got) != len(want) {
		t.Fatalf("mergeSorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSorted = %v, want %v", got, want)
		}
	}
}

func TestClusterBreakerOpensAndRecovers(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) {
		c.Breaker = core.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond}
		c.CacheSize = 0
	})
	key := "breaker-key"
	if err := tc.cl.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	primary := tc.cl.owners(key)[0]
	tc.servers[tc.nodeIndex(primary)].SetDown(true)
	// Enough failing reads to trip the primary's breaker.
	for i := 0; i < 3; i++ {
		if _, err := tc.cl.Get(key); err != nil {
			t.Fatalf("failover read %d: %v", i, err)
		}
	}
	states := tc.cl.BreakerStates()
	open := false
	for _, st := range states {
		if st.Service == primary && st.State != "closed" {
			open = true
		}
	}
	if !open {
		t.Fatalf("primary breaker did not open: %+v", states)
	}
	// Node heals; after the cooldown a probe closes the breaker again.
	tc.servers[tc.nodeIndex(primary)].SetDown(false)
	time.Sleep(80 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := tc.cl.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range tc.cl.BreakerStates() {
		if st.Service == primary && st.State != "closed" {
			t.Fatalf("breaker did not close after recovery: %+v", st)
		}
	}
}

func TestClusterCodecSharding(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) {
		c.Codec = codec.Chain{codec.Gzip{}, mustAES("cluster-test-passphrase")}
	})
	secret := []byte(strings.Repeat("personal knowledge entry. ", 50))
	if err := tc.cl.Put("s", secret); err != nil {
		t.Fatal(err)
	}
	holders := tc.holders("s")
	if len(holders) != 2 {
		t.Fatalf("encrypted key on %v nodes, want 2", holders)
	}
	// Encode-once fan-out: both replicas hold byte-identical ciphertext,
	// and neither holds plaintext.
	a, _ := tc.stores[holders[0]].Get("s")
	b, _ := tc.stores[holders[1]].Get("s")
	if !bytes.Equal(a, b) {
		t.Error("replicas hold different ciphertexts — value was re-encoded per node")
	}
	if bytes.Contains(a, secret[:16]) {
		t.Error("plaintext visible on a store node")
	}
	got, err := tc.cl.Get("s")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("round trip = (%q..., %v)", truncate(got), err)
	}
}

func truncate(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

func mustAES(passphrase string) codec.Codec {
	c, err := codec.NewAESGCM(passphrase)
	if err != nil {
		panic(err)
	}
	return c
}

func TestClusterRebalanceAfterRemove(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	const n = 40
	for i := 0; i < n; i++ {
		if err := tc.cl.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Decommission node 0: its transport leaves the ring, then Rebalance
	// restores R=2 on the survivors from the remaining replicas.
	removed := tc.urls[0]
	tc.cl.RemoveNode(removed)
	tc.servers[0].SetDown(true) // decommissioned for real, not just forgotten
	moved, err := tc.cl.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if moved != n {
		t.Fatalf("Rebalance copied %d keys, want %d", moved, n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%02d", i)
		owners := tc.cl.owners(k)
		if len(owners) != 2 {
			t.Fatalf("owners(%s) = %v after remove", k, owners)
		}
		for _, o := range owners {
			if o == removed {
				t.Fatalf("key %s still owned by removed node", k)
			}
			if _, err := tc.stores[tc.nodeIndex(o)].Get(k); err != nil {
				t.Fatalf("key %s missing on new owner %s after rebalance", k, o)
			}
		}
	}
}

func TestClusterRebalanceAfterAdd(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	// Start with a 3-node ring; node 3 exists but is not a member yet.
	tc.cl.RemoveNode(tc.urls[3])
	const n = 30
	for i := 0; i < n; i++ {
		if err := tc.cl.Put(fmt.Sprintf("key-%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tc.cl.AddNode(tc.urls[3])
	if _, err := tc.cl.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every key is now present on its (possibly changed) owner set, and
	// the new node received its share.
	newNodeKeys := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%02d", i)
		for _, o := range tc.cl.owners(k) {
			if _, err := tc.stores[tc.nodeIndex(o)].Get(k); err != nil {
				t.Fatalf("key %s missing on owner %s after rebalance", k, o)
			}
			if o == tc.urls[3] {
				newNodeKeys++
			}
		}
	}
	if newNodeKeys == 0 {
		t.Fatal("new node received no keys — ring not rebalanced")
	}
}

func TestClusterMetricsExposed(t *testing.T) {
	set := metrics.NewSet()
	tc := newTestCluster(t, 4, func(c *ClusterConfig) {
		c.Metrics = set
		c.CacheSize = 0
	})
	for i := 0; i < 10; i++ {
		if err := tc.cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := tc.cl.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	tw := metrics.NewTextWriter(&buf)
	set.Expose(tw)
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"cloudstore_node_requests_total",
		"cloudstore_fanout_latency_ns",
		"cloudstore_replication_lag_ns",
		"cloudstore_ring_nodes",
		"cloudstore_pending_writes",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing %s", family)
		}
	}
	if !strings.Contains(out, `node="`+tc.urls[0]+`"`) {
		t.Errorf("per-node label missing:\n%s", out)
	}
	if !strings.Contains(out, "cloudstore_ring_nodes 4") {
		t.Errorf("ring gauge wrong:\n%s", out)
	}
}

func TestClusterHandlerGateway(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	gw := httptest.NewServer(tc.cl.Handler())
	defer gw.Close()
	// The gateway speaks the same protocol as a node, so a plain Client
	// can talk to the whole cluster through it.
	c := NewClient(ClientConfig{BaseURL: gw.URL})
	if err := c.Put("via-gateway", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("via-gateway")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
	if len(tc.holders("via-gateway")) != 2 {
		t.Fatalf("gateway write on %v nodes, want 2", tc.holders("via-gateway"))
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "via-gateway" {
		t.Fatalf("Keys = (%v, %v)", keys, err)
	}
	resp, err := http.Get(gw.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Nodes       []string `json:"nodes"`
		Replicas    int      `json:"replicas"`
		WriteQuorum int      `json:"writeQuorum"`
	}
	if err := jsonDecode(resp.Body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Nodes) != 4 || info.Replicas != 2 || info.WriteQuorum != 2 {
		t.Fatalf("cluster info = %+v", info)
	}
}

func TestClusterContextCancel(t *testing.T) {
	tc := newTestCluster(t, 4, func(c *ClusterConfig) {
		c.Timeout = 30 * time.Second
		c.CacheSize = 0
		c.Local = kvstore.NewMemory()
	})
	if err := tc.cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, srv := range tc.servers {
		srv.SetLatency(10 * time.Second)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	// Cancelled reads fall through to the local mirror instead of hanging
	// on the injected latency.
	got, err := tc.cl.GetCtx(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("GetCtx = (%q, %v), want local-mirror fallback", got, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("GetCtx took %v — context cancellation not honoured", elapsed)
	}
}
