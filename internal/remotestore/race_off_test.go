//go:build !race

package remotestore

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip under it because instrumentation distorts relative costs.
const raceEnabled = false
