// Package clock provides a clock abstraction so that simulations and tests
// can run on deterministic virtual time while production code uses the real
// wall clock.
//
// All time-dependent components in this repository accept a Clock rather
// than calling time.Now directly. The zero configuration (a nil Clock) is
// never valid; use Real() or NewVirtual().
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock tells time and sleeps. Implementations must be safe for concurrent
// use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d on this clock's timeline.
	Sleep(d time.Duration)
	// Since returns the duration elapsed since t.
	Since(t time.Time) time.Duration
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
}

// Real returns a Clock backed by the system wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

var _ Clock = realClock{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a manually advanced clock for deterministic tests and
// simulation. Goroutines blocked in Sleep or waiting on After channels are
// released when Advance moves time past their deadlines.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a Virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual duration elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration {
	return v.Now().Sub(t)
}

// Sleep blocks until the virtual clock has been advanced by at least d.
// Sleeping for a non-positive duration returns immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel that receives the virtual time once the clock has
// advanced by at least d. The channel has capacity 1 so Advance never
// blocks delivering to it.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, waiter{deadline: v.now.Add(d), ch: ch})
	return ch
}

// Advance moves the virtual clock forward by d, waking any sleepers whose
// deadlines are reached. Advancing by a non-positive duration is a no-op.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	// Fire expired waiters in deadline order so observers see a coherent
	// timeline.
	sort.Slice(v.waiters, func(i, j int) bool {
		return v.waiters[i].deadline.Before(v.waiters[j].deadline)
	})
	var remaining []waiter
	var fired []waiter
	for _, w := range v.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	v.waiters = remaining
	v.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Pending reports how many goroutines are waiting on this clock. Tests use
// it to synchronize with sleepers before advancing time.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
