package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := Real()
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Error("Since returned negative duration")
	}
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Error("Now did not advance across Sleep")
	}
}

func TestVirtualNowAdvance(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(time.Hour)
	if got := v.Since(start); got != time.Hour {
		t.Errorf("Since = %v, want 1h", got)
	}
	v.Advance(-time.Hour) // no-op
	if got := v.Since(start); got != time.Hour {
		t.Errorf("negative Advance should be a no-op, Since = %v", got)
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make(chan struct{}, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(10 * time.Second)
		woke <- struct{}{}
	}()
	// Wait until the sleeper has registered.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-woke:
		t.Fatal("sleeper woke before Advance")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-woke:
		t.Fatal("sleeper woke before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	v.Advance(time.Second)
	select {
	case <-woke:
	case <-time.After(time.Second):
		t.Fatal("sleeper did not wake after deadline")
	}
	wg.Wait()
}

func TestVirtualSleepNonPositive(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive Sleep blocked")
	}
}

func TestVirtualAfterImmediate(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	select {
	case ts := <-v.After(0):
		if !ts.Equal(time.Unix(100, 0)) {
			t.Errorf("After(0) delivered %v, want clock time", ts)
		}
	case <-time.After(time.Second):
		t.Fatal("After(0) did not deliver immediately")
	}
}

func TestVirtualMultipleWaitersOrdered(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch1 := v.After(time.Second)
	ch2 := v.After(2 * time.Second)
	v.Advance(90 * time.Second)
	<-ch1
	<-ch2
	if v.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", v.Pending())
	}
}
