package aggregate

import (
	"fmt"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/webcorpus"
)

func TestRateByConsensusOrdersEnginesByQuality(t *testing.T) {
	// No ground truth used: ratings must still rank the precise engine
	// above the noisy one, matching the known profile quality order.
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 31, NumDocs: 60})
	engines := []*nlu.Engine{
		nlu.NewEngine(nlu.ProfileAlpha),
		nlu.NewEngine(nlu.ProfileBeta),
		nlu.NewEngine(nlu.ProfileGamma),
	}
	var perDoc [][]nlu.Analysis
	for _, d := range corpus.Docs {
		var analyses []nlu.Analysis
		for _, e := range engines {
			analyses = append(analyses, e.Analyze(d.Body))
		}
		perDoc = append(perDoc, analyses)
	}
	ratings := RateByConsensus(perDoc, 0.5)
	if len(ratings) != 3 {
		t.Fatalf("ratings = %+v", ratings)
	}
	byName := map[string]float64{}
	for _, r := range ratings {
		byName[r.Service] = r.Agreement
		if r.Documents != 60 {
			t.Errorf("%s rated over %d docs, want 60", r.Service, r.Documents)
		}
		if r.Agreement < 0 || r.Agreement > 1 {
			t.Errorf("agreement %v out of range", r.Agreement)
		}
	}
	if byName["nlu-alpha"] <= byName["nlu-gamma"] {
		t.Errorf("alpha agreement %v should exceed gamma %v",
			byName["nlu-alpha"], byName["nlu-gamma"])
	}
	// Best first.
	if ratings[0].Agreement < ratings[len(ratings)-1].Agreement {
		t.Error("ratings not sorted best first")
	}
}

func TestRateByConsensusSkipsSingletons(t *testing.T) {
	perDoc := [][]nlu.Analysis{
		{analysisWith("only", "e1")}, // one opinion: no consensus possible
	}
	if got := RateByConsensus(perDoc, 0.5); len(got) != 0 {
		t.Errorf("ratings = %+v, want none", got)
	}
}

func TestRateByConsensusEmpty(t *testing.T) {
	if got := RateByConsensus(nil, 0.5); len(got) != 0 {
		t.Errorf("ratings = %+v", got)
	}
}

func TestRateByConsensusDeterministicTieBreak(t *testing.T) {
	mk := func(engine string) nlu.Analysis { return analysisWith(engine, "e1") }
	perDoc := [][]nlu.Analysis{{mk("b"), mk("a")}}
	got := RateByConsensus(perDoc, 0.5)
	if len(got) != 2 || got[0].Service != "a" {
		t.Errorf("tie-break order = %+v", got)
	}
}

// Regression guard: ratings correlate with actual ground-truth F1.
func TestConsensusRatingTracksGroundTruth(t *testing.T) {
	// Three engines so majority consensus is meaningful (with two, any
	// single engine's finding reaches confidence 0.5 and the "consensus"
	// degenerates to the union).
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 77, NumDocs: 80})
	engines := []*nlu.Engine{
		nlu.NewEngine(nlu.ProfileAlpha),
		nlu.NewEngine(nlu.ProfileBeta),
		nlu.NewEngine(nlu.ProfileGamma),
	}
	var perDoc [][]nlu.Analysis
	truthF1 := map[string]float64{}
	for _, d := range corpus.Docs {
		var analyses []nlu.Analysis
		for _, e := range engines {
			a := e.Analyze(d.Body)
			analyses = append(analyses, a)
			truthF1[a.Engine] += Score(KnownOnly(a.EntityIDs()), d.TrueEntities).F1
		}
		perDoc = append(perDoc, analyses)
	}
	ratings := RateByConsensus(perDoc, 0.5)
	// The engine with the higher true F1 must get the higher rating.
	var bestTruth string
	if truthF1["nlu-alpha"] > truthF1["nlu-gamma"] {
		bestTruth = "nlu-alpha"
	} else {
		bestTruth = "nlu-gamma"
	}
	if ratings[0].Service != bestTruth {
		t.Errorf("consensus rating top = %s, ground truth best = %s", ratings[0].Service, bestTruth)
	}
}

// Guard that the lexicon the engines rely on is big enough for the corpus
// used above (keeps the test meaningful if data changes).
func TestLexiconCoverage(t *testing.T) {
	if len(lexicon.AllEntities()) < 50 {
		t.Error("gazetteer shrank; consensus tests lose power")
	}
	_ = fmt.Sprintf
}
