// Package aggregate implements the rich SDK's multi-document and
// multi-service analysis support (paper §2.2): aggregating entities,
// keywords, and per-entity sentiment across many documents (for example
// every document returned by a web search), combining the output of several
// NLU services with confidence proportional to how many services agree, and
// scoring service output against a reference — the "results analyzer" of
// the paper's Figure 3.
package aggregate

import (
	"sort"
	"strings"

	"repro/internal/nlu"
)

// EntityCount is the aggregate frequency of one entity across documents.
type EntityCount struct {
	EntityID  string `json:"entityId"`
	Documents int    `json:"documents"`
	Mentions  int    `json:"mentions"`
}

// Entities aggregates entity frequencies across analyses: how many
// documents mention each entity and how many total mentions it has. The
// result is sorted by documents, then mentions, then ID — "our results can
// thus indicate which named entities ... are most relevant to the search
// query".
func Entities(analyses []nlu.Analysis) []EntityCount {
	type acc struct{ docs, mentions int }
	accs := make(map[string]*acc)
	for _, a := range analyses {
		seen := make(map[string]bool)
		for _, m := range a.Entities {
			e := accs[m.EntityID]
			if e == nil {
				e = &acc{}
				accs[m.EntityID] = e
			}
			e.mentions++
			if !seen[m.EntityID] {
				seen[m.EntityID] = true
				e.docs++
			}
		}
	}
	out := make([]EntityCount, 0, len(accs))
	for id, a := range accs {
		out = append(out, EntityCount{EntityID: id, Documents: a.docs, Mentions: a.mentions})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Documents != out[j].Documents {
			return out[i].Documents > out[j].Documents
		}
		if out[i].Mentions != out[j].Mentions {
			return out[i].Mentions > out[j].Mentions
		}
		return out[i].EntityID < out[j].EntityID
	})
	return out
}

// Keywords aggregates keyword counts across analyses, sorted by total
// count then text. Keywords are not disambiguated (paper §2.2).
func Keywords(analyses []nlu.Analysis, k int) []nlu.Keyword {
	counts := make(map[string]int)
	for _, a := range analyses {
		for _, kw := range a.Keywords {
			counts[kw.Text] += kw.Count
		}
	}
	out := make([]nlu.Keyword, 0, len(counts))
	for text, c := range counts {
		out = append(out, nlu.Keyword{Text: text, Count: c, Score: float64(c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Text < out[j].Text
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// EntitySentiment is the aggregate sentiment toward one entity across
// documents — how favorably the entity "is represented on the Web".
type EntitySentiment struct {
	EntityID  string  `json:"entityId"`
	MeanScore float64 `json:"meanScore"`
	Documents int     `json:"documents"`
	Mentions  int     `json:"mentions"`
}

// Sentiments aggregates per-entity sentiment across analyses: the mean of
// per-document entity scores, weighted equally per document. Sorted by
// mean score descending (most favorably represented first).
func Sentiments(analyses []nlu.Analysis) []EntitySentiment {
	type acc struct {
		sum      float64
		docs     int
		mentions int
	}
	accs := make(map[string]*acc)
	for _, a := range analyses {
		for _, es := range a.EntitySentiments {
			e := accs[es.EntityID]
			if e == nil {
				e = &acc{}
				accs[es.EntityID] = e
			}
			e.sum += es.Score
			e.docs++
			e.mentions += es.Mentions
		}
	}
	out := make([]EntitySentiment, 0, len(accs))
	for id, a := range accs {
		out = append(out, EntitySentiment{
			EntityID:  id,
			MeanScore: a.sum / float64(a.docs),
			Documents: a.docs,
			Mentions:  a.mentions,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanScore != out[j].MeanScore {
			return out[i].MeanScore > out[j].MeanScore
		}
		return out[i].EntityID < out[j].EntityID
	})
	return out
}

// ConsensusEntity is one entity with the services that found it and the
// resulting confidence.
type ConsensusEntity struct {
	EntityID string `json:"entityId"`
	// Services that reported the entity, sorted.
	Services []string `json:"services"`
	// Confidence is |services that found it| / |services consulted|. The
	// paper: "the application could assign a higher degree of confidence
	// to entities ... identified by more services".
	Confidence float64 `json:"confidence"`
}

// Consensus combines entity findings from several services analyzing the
// same document. Results are sorted by confidence descending then ID.
func Consensus(perService []nlu.Analysis) []ConsensusEntity {
	if len(perService) == 0 {
		return nil
	}
	found := make(map[string]map[string]bool) // entity -> set of engines
	for _, a := range perService {
		for _, id := range a.EntityIDs() {
			if found[id] == nil {
				found[id] = make(map[string]bool)
			}
			found[id][a.Engine] = true
		}
	}
	n := float64(len(perService))
	out := make([]ConsensusEntity, 0, len(found))
	for id, engines := range found {
		svcs := make([]string, 0, len(engines))
		for e := range engines {
			svcs = append(svcs, e)
		}
		sort.Strings(svcs)
		out = append(out, ConsensusEntity{
			EntityID:   id,
			Services:   svcs,
			Confidence: float64(len(svcs)) / n,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].EntityID < out[j].EntityID
	})
	return out
}

// FilterConfident returns the entity IDs whose consensus confidence is at
// least minConfidence, sorted.
func FilterConfident(consensus []ConsensusEntity, minConfidence float64) []string {
	var out []string
	for _, c := range consensus {
		if c.Confidence >= minConfidence {
			out = append(out, c.EntityID)
		}
	}
	sort.Strings(out)
	return out
}

// PRF is a precision/recall/F1 score of predicted entities against a
// reference — how the SDK lets an application "compare the output of these
// services to determine how good they are".
type PRF struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
}

// Score compares predicted entity IDs against truth. Unknown-prefixed
// predictions ("unknown:...") count as false positives unless the truth
// also lists them.
func Score(predicted, truth []string) PRF {
	predSet := toSet(predicted)
	truthSet := toSet(truth)
	var prf PRF
	for p := range predSet {
		if truthSet[p] {
			prf.TP++
		} else {
			prf.FP++
		}
	}
	for g := range truthSet {
		if !predSet[g] {
			prf.FN++
		}
	}
	if prf.TP+prf.FP > 0 {
		prf.Precision = float64(prf.TP) / float64(prf.TP+prf.FP)
	}
	if prf.TP+prf.FN > 0 {
		prf.Recall = float64(prf.TP) / float64(prf.TP+prf.FN)
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// KnownOnly filters entity IDs to gazetteer-resolved ones, dropping
// "unknown:" heuristic detections.
func KnownOnly(ids []string) []string {
	var out []string
	for _, id := range ids {
		if !strings.HasPrefix(id, "unknown:") {
			out = append(out, id)
		}
	}
	return out
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
