package aggregate

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/nlu"
)

func analysisWith(engine string, ids ...string) nlu.Analysis {
	a := nlu.Analysis{Engine: engine}
	for _, id := range ids {
		a.Entities = append(a.Entities, nlu.Mention{EntityID: id})
	}
	return a
}

func TestEntitiesAggregation(t *testing.T) {
	analyses := []nlu.Analysis{
		analysisWith("e", "country:us", "country:us", "company:acme"),
		analysisWith("e", "country:us"),
		analysisWith("e", "company:acme"),
	}
	got := Entities(analyses)
	want := []EntityCount{
		{EntityID: "company:acme", Documents: 2, Mentions: 2},
		{EntityID: "country:us", Documents: 2, Mentions: 3},
	}
	// us has more mentions but equal documents; sorted docs desc then
	// mentions desc, so us first.
	want = []EntityCount{
		{EntityID: "country:us", Documents: 2, Mentions: 3},
		{EntityID: "company:acme", Documents: 2, Mentions: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Entities = %+v, want %+v", got, want)
	}
}

func TestEntitiesEmpty(t *testing.T) {
	if got := Entities(nil); len(got) != 0 {
		t.Errorf("Entities(nil) = %v", got)
	}
}

func TestKeywordsAggregation(t *testing.T) {
	analyses := []nlu.Analysis{
		{Keywords: []nlu.Keyword{{Text: "market", Count: 3}, {Text: "growth", Count: 1}}},
		{Keywords: []nlu.Keyword{{Text: "market", Count: 2}, {Text: "policy", Count: 2}}},
	}
	got := Keywords(analyses, 2)
	if len(got) != 2 || got[0].Text != "market" || got[0].Count != 5 {
		t.Errorf("Keywords = %+v", got)
	}
}

func TestSentimentsAggregation(t *testing.T) {
	analyses := []nlu.Analysis{
		{EntitySentiments: []nlu.EntitySentiment{
			{EntityID: "company:acme", Score: 0.8, Mentions: 2},
			{EntityID: "company:globex", Score: -0.5, Mentions: 1},
		}},
		{EntitySentiments: []nlu.EntitySentiment{
			{EntityID: "company:acme", Score: 0.4, Mentions: 1},
		}},
	}
	got := Sentiments(analyses)
	if len(got) != 2 {
		t.Fatalf("Sentiments = %+v", got)
	}
	if got[0].EntityID != "company:acme" || math.Abs(got[0].MeanScore-0.6) > 1e-12 {
		t.Errorf("first = %+v, want acme 0.6", got[0])
	}
	if got[0].Documents != 2 || got[0].Mentions != 3 {
		t.Errorf("acme counts = %+v", got[0])
	}
	if got[1].EntityID != "company:globex" || got[1].MeanScore != -0.5 {
		t.Errorf("second = %+v", got[1])
	}
}

func TestConsensusConfidence(t *testing.T) {
	perService := []nlu.Analysis{
		analysisWith("alpha", "country:us", "company:acme"),
		analysisWith("beta", "country:us", "unknown:xyz"),
		analysisWith("gamma", "country:us"),
	}
	got := Consensus(perService)
	if len(got) != 3 {
		t.Fatalf("Consensus = %+v", got)
	}
	if got[0].EntityID != "country:us" || got[0].Confidence != 1 {
		t.Errorf("top = %+v, want country:us at confidence 1", got[0])
	}
	if len(got[0].Services) != 3 {
		t.Errorf("services = %v", got[0].Services)
	}
	for _, c := range got[1:] {
		if math.Abs(c.Confidence-1.0/3.0) > 1e-12 {
			t.Errorf("singleton confidence = %v, want 1/3", c.Confidence)
		}
	}
}

func TestConsensusEmpty(t *testing.T) {
	if got := Consensus(nil); got != nil {
		t.Errorf("Consensus(nil) = %v", got)
	}
}

func TestFilterConfident(t *testing.T) {
	cons := []ConsensusEntity{
		{EntityID: "a", Confidence: 1},
		{EntityID: "b", Confidence: 0.66},
		{EntityID: "c", Confidence: 0.33},
	}
	got := FilterConfident(cons, 0.5)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("FilterConfident = %v", got)
	}
}

func TestScorePerfect(t *testing.T) {
	prf := Score([]string{"a", "b"}, []string{"a", "b"})
	if prf.Precision != 1 || prf.Recall != 1 || prf.F1 != 1 {
		t.Errorf("perfect PRF = %+v", prf)
	}
}

func TestScoreMixed(t *testing.T) {
	prf := Score([]string{"a", "b", "x"}, []string{"a", "b", "c"})
	if prf.TP != 2 || prf.FP != 1 || prf.FN != 1 {
		t.Errorf("counts = %+v", prf)
	}
	if math.Abs(prf.Precision-2.0/3.0) > 1e-12 || math.Abs(prf.Recall-2.0/3.0) > 1e-12 {
		t.Errorf("PRF = %+v", prf)
	}
}

func TestScoreEmptyPrediction(t *testing.T) {
	prf := Score(nil, []string{"a"})
	if prf.Precision != 0 || prf.Recall != 0 || prf.F1 != 0 || prf.FN != 1 {
		t.Errorf("PRF = %+v", prf)
	}
}

func TestScoreDuplicatesCollapsed(t *testing.T) {
	prf := Score([]string{"a", "a", "a"}, []string{"a"})
	if prf.TP != 1 || prf.FP != 0 {
		t.Errorf("duplicates not collapsed: %+v", prf)
	}
}

func TestKnownOnly(t *testing.T) {
	got := KnownOnly([]string{"country:us", "unknown:blob", "company:acme"})
	if !reflect.DeepEqual(got, []string{"country:us", "company:acme"}) {
		t.Errorf("KnownOnly = %v", got)
	}
}

func TestConsensusBeatsSingleNoisyService(t *testing.T) {
	// Three services with partially overlapping errors: majority voting
	// should outscore the noisiest single service on F1.
	truth := []string{"e1", "e2", "e3", "e4"}
	alpha := analysisWith("alpha", "e1", "e2", "e3")       // miss e4
	beta := analysisWith("beta", "e1", "e2", "e4", "f1")   // miss e3, one FP
	gamma := analysisWith("gamma", "e1", "e3", "f1", "f2") // misses, 2 FPs
	cons := Consensus([]nlu.Analysis{alpha, beta, gamma})
	voted := FilterConfident(cons, 0.5) // >= 2 of 3
	votedPRF := Score(voted, truth)
	gammaPRF := Score(gamma.EntityIDs(), truth)
	if votedPRF.F1 <= gammaPRF.F1 {
		t.Errorf("consensus F1 %.2f should beat noisy single %.2f", votedPRF.F1, gammaPRF.F1)
	}
}
