package aggregate

import (
	"math"
	"testing"

	"repro/internal/nlu"
)

// The pipeline's aggregate stage can legitimately receive degenerate input
// — every document skipped, a single engine, analyses that found nothing.
// These tests pin down that the aggregators return empty (not nil-panic,
// not NaN) results in those cases.

func TestAggregateEmptyAnalyses(t *testing.T) {
	for name, analyses := range map[string][]nlu.Analysis{
		"nil slice":      nil,
		"empty slice":    {},
		"empty analyses": {{Engine: "a"}, {Engine: "b"}},
	} {
		if got := Entities(analyses); len(got) != 0 {
			t.Errorf("%s: Entities = %+v, want empty", name, got)
		}
		if got := Sentiments(analyses); len(got) != 0 {
			t.Errorf("%s: Sentiments = %+v, want empty", name, got)
		}
		if got := Keywords(analyses, 10); len(got) != 0 {
			t.Errorf("%s: Keywords = %+v, want empty", name, got)
		}
		if got := Consensus(analyses); len(got) != 0 {
			t.Errorf("%s: Consensus = %+v, want empty", name, got)
		}
	}
}

func TestConsensusSingleEngine(t *testing.T) {
	analyses := []nlu.Analysis{{
		Engine: "solo",
		Entities: []nlu.Mention{
			{EntityID: "kb:acme", Surface: "Acme"},
		},
	}}
	cons := Consensus(analyses)
	if len(cons) != 1 {
		t.Fatalf("Consensus = %+v, want 1 entity", cons)
	}
	// One engine out of one consulted is full confidence, not NaN.
	if cons[0].Confidence != 1 {
		t.Errorf("Confidence = %v, want 1", cons[0].Confidence)
	}
	if got := FilterConfident(cons, 0.5); len(got) != 1 || got[0] != "kb:acme" {
		t.Errorf("FilterConfident = %v", got)
	}
	// A single opinion is not a consensus: RateByConsensus must skip the
	// document rather than rate the engine against itself.
	if got := RateByConsensus([][]nlu.Analysis{analyses}, 0.5); len(got) != 0 {
		t.Errorf("RateByConsensus = %+v, want no ratings", got)
	}
}

func TestScoreDegenerate(t *testing.T) {
	for name, tc := range map[string]struct {
		predicted, truth []string
	}{
		"both empty":      {nil, nil},
		"nothing found":   {nil, []string{"kb:acme"}},
		"nothing to find": {[]string{"kb:acme"}, nil},
	} {
		prf := Score(tc.predicted, tc.truth)
		for field, v := range map[string]float64{
			"precision": prf.Precision, "recall": prf.Recall, "f1": prf.F1,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", name, field, v)
			}
		}
	}
	if prf := Score(nil, nil); prf.TP != 0 || prf.FP != 0 || prf.FN != 0 {
		t.Errorf("empty Score counted something: %+v", prf)
	}
}

func TestSentimentsNoNaN(t *testing.T) {
	// All-docs-failed upstream means zero analyses reach the aggregator;
	// a partially-failed run can contribute analyses with no entity
	// sentiments at all. Neither may produce NaN means.
	analyses := []nlu.Analysis{
		{Engine: "a"},
		{Engine: "a", EntitySentiments: []nlu.EntitySentiment{
			{EntityID: "kb:acme", Score: 0.4, Mentions: 1},
		}},
	}
	for _, s := range Sentiments(analyses) {
		if math.IsNaN(s.MeanScore) {
			t.Errorf("MeanScore for %s is NaN", s.EntityID)
		}
	}
	if got := Sentiments(analyses); len(got) != 1 || got[0].Documents != 1 {
		t.Errorf("Sentiments = %+v", got)
	}
}

func TestKeywordsCapBeyondLength(t *testing.T) {
	analyses := []nlu.Analysis{{
		Engine:   "a",
		Keywords: []nlu.Keyword{{Text: "market", Count: 2}},
	}}
	if got := Keywords(analyses, 10); len(got) != 1 {
		t.Errorf("Keywords = %+v, want the single keyword", got)
	}
	if got := Keywords(analyses, 0); len(got) != 1 {
		t.Errorf("Keywords with k=0 = %+v, want uncapped", got)
	}
}
