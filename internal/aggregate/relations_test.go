package aggregate

import (
	"testing"

	"repro/internal/nlu"
)

func analysisWithRelations(engine string, rels ...nlu.Relation) nlu.Analysis {
	return nlu.Analysis{Engine: engine, Relations: rels}
}

func rel(s, p, o string, conf float64) nlu.Relation {
	return nlu.Relation{SubjectID: s, Predicate: p, ObjectID: o, Confidence: conf}
}

func TestRelationConsensusAgreementBoostsConfidence(t *testing.T) {
	acq := rel("company:acme", "kb:acquired", "company:globex", 0.9)
	perService := []nlu.Analysis{
		analysisWithRelations("alpha", acq),
		analysisWithRelations("beta", acq),
		analysisWithRelations("gamma", rel("company:acme", "kb:sued", "company:globex", 0.8)),
	}
	got := RelationConsensus(perService)
	if len(got) != 2 {
		t.Fatalf("consensus = %+v", got)
	}
	// The 2/3-agreed acquisition outranks the 1/3 lawsuit.
	if got[0].Relation.Predicate != "kb:acquired" {
		t.Errorf("top relation = %+v", got[0])
	}
	if len(got[0].Services) != 2 {
		t.Errorf("services = %v", got[0].Services)
	}
	if got[0].Confidence <= got[1].Confidence {
		t.Errorf("agreed relation confidence %v should beat singleton %v",
			got[0].Confidence, got[1].Confidence)
	}
}

func TestRelationConsensusEmpty(t *testing.T) {
	if got := RelationConsensus(nil); got != nil {
		t.Errorf("consensus = %v", got)
	}
	if got := RelationConsensus([]nlu.Analysis{{Engine: "a"}}); len(got) != 0 {
		t.Errorf("no-relations consensus = %v", got)
	}
}

func TestRelationConsensusDeterministic(t *testing.T) {
	perService := []nlu.Analysis{
		analysisWithRelations("a",
			rel("x", "kb:praised", "y", 0.5),
			rel("x", "kb:acquired", "y", 0.5)),
	}
	g1 := RelationConsensus(perService)
	g2 := RelationConsensus(perService)
	for i := range g1 {
		if nlu.RelationKey(g1[i].Relation) != nlu.RelationKey(g2[i].Relation) {
			t.Fatal("order unstable")
		}
	}
	// Tie on confidence breaks by key: acquired < praised.
	if g1[0].Relation.Predicate != "kb:acquired" {
		t.Errorf("tie-break order = %+v", g1)
	}
}
