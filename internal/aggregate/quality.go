package aggregate

import (
	"sort"

	"repro/internal/nlu"
)

// The paper's future work (§5): "more sophisticated methods can be used
// for evaluating the quality of responses provided by services". This file
// implements one such method: rating each service by its agreement with
// the consensus of all services, so quality scores emerge without any
// labeled ground truth. The scores feed the SDK's per-service quality
// ratings (core.WithQuality / Monitor.RecordQuality) and hence ranking.

// QualityRating is one service's consensus-agreement score.
type QualityRating struct {
	Service string `json:"service"`
	// Agreement is the F1 of the service's entities against the majority
	// consensus, averaged over documents. 1 means the service always
	// matches what most services find.
	Agreement float64 `json:"agreement"`
	// Documents is how many documents contributed.
	Documents int `json:"documents"`
}

// RateByConsensus scores every service across a set of documents, where
// perDocument holds each document's per-service analyses (all services
// analyzing the same document). minConfidence sets the consensus threshold
// (0.5 = majority). Returns ratings sorted best first.
func RateByConsensus(perDocument [][]nlu.Analysis, minConfidence float64) []QualityRating {
	type acc struct {
		sum  float64
		docs int
	}
	accs := make(map[string]*acc)
	for _, analyses := range perDocument {
		if len(analyses) < 2 {
			continue // consensus needs at least two opinions
		}
		truthish := FilterConfident(Consensus(analyses), minConfidence)
		for _, a := range analyses {
			prf := Score(a.EntityIDs(), truthish)
			e := accs[a.Engine]
			if e == nil {
				e = &acc{}
				accs[a.Engine] = e
			}
			e.sum += prf.F1
			e.docs++
		}
	}
	out := make([]QualityRating, 0, len(accs))
	for name, a := range accs {
		out = append(out, QualityRating{
			Service:   name,
			Agreement: a.sum / float64(a.docs),
			Documents: a.docs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Agreement != out[j].Agreement {
			return out[i].Agreement > out[j].Agreement
		}
		return out[i].Service < out[j].Service
	})
	return out
}
