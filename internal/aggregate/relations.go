package aggregate

import (
	"sort"

	"repro/internal/nlu"
)

// Cross-service relation combination (paper §2.1: "if a text document is
// being analyzed for named entity recognition or relationship extraction,
// it may be desirable to use multiple ... relationship extraction services.
// The results from these services could be combined.")

// ConsensusRelation is one relation with the services that found it.
type ConsensusRelation struct {
	Relation nlu.Relation `json:"relation"`
	// Services that reported it, sorted.
	Services []string `json:"services"`
	// Confidence is |services| / |services consulted|, scaled by the mean
	// of the per-service extraction confidences.
	Confidence float64 `json:"confidence"`
}

// RelationConsensus combines relation findings from several services
// analyzing the same document, sorted by confidence descending then key.
func RelationConsensus(perService []nlu.Analysis) []ConsensusRelation {
	if len(perService) == 0 {
		return nil
	}
	type acc struct {
		rel      nlu.Relation
		services map[string]bool
		confSum  float64
		count    int
	}
	accs := make(map[string]*acc)
	for _, a := range perService {
		for _, r := range a.Relations {
			key := nlu.RelationKey(r)
			e := accs[key]
			if e == nil {
				e = &acc{rel: r, services: make(map[string]bool)}
				accs[key] = e
			}
			if !e.services[a.Engine] {
				e.services[a.Engine] = true
				e.confSum += r.Confidence
				e.count++
			}
		}
	}
	n := float64(len(perService))
	out := make([]ConsensusRelation, 0, len(accs))
	for _, e := range accs {
		svcs := make([]string, 0, len(e.services))
		for s := range e.services {
			svcs = append(svcs, s)
		}
		sort.Strings(svcs)
		meanConf := e.confSum / float64(e.count)
		out = append(out, ConsensusRelation{
			Relation:   e.rel,
			Services:   svcs,
			Confidence: float64(len(svcs)) / n * meanConf,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return nlu.RelationKey(out[i].Relation) < nlu.RelationKey(out[j].Relation)
	})
	return out
}
