package future

import "testing"

func BenchmarkFutureCompleteGet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := New[int]()
		f.Complete(i)
		if v, err := f.Get(); err != nil || v != i {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkPoolSubmit(b *testing.B) {
	p, err := NewPool(4, 256)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Submit(p, func() (int, error) { return 1, nil })
		if _, err := f.Get(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllOf8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := make([]*Future[int], 8)
		for j := range fs {
			fs[j] = Completed(j)
		}
		if _, err := All(fs...).Get(); err != nil {
			b.Fatal(err)
		}
	}
}
