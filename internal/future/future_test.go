package future

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestCompleteAndGet(t *testing.T) {
	f := New[int]()
	if f.IsDone() {
		t.Error("fresh future IsDone = true")
	}
	if !f.Complete(42) {
		t.Error("Complete returned false")
	}
	if !f.IsDone() {
		t.Error("IsDone = false after Complete")
	}
	v, err := f.Get()
	if err != nil || v != 42 {
		t.Errorf("Get = (%d, %v), want (42, nil)", v, err)
	}
}

func TestFail(t *testing.T) {
	f := New[string]()
	if !f.Fail(errBoom) {
		t.Error("Fail returned false")
	}
	_, err := f.Get()
	if !errors.Is(err, errBoom) {
		t.Errorf("Get error = %v, want boom", err)
	}
}

func TestFailNilError(t *testing.T) {
	f := New[int]()
	f.Fail(nil)
	_, err := f.Get()
	if err == nil {
		t.Error("Fail(nil) should still settle with a non-nil error")
	}
}

func TestSettleOnlyOnce(t *testing.T) {
	f := New[int]()
	if !f.Complete(1) {
		t.Error("first Complete = false")
	}
	if f.Complete(2) {
		t.Error("second Complete = true")
	}
	if f.Fail(errBoom) {
		t.Error("Fail after Complete = true")
	}
	v, err := f.Get()
	if v != 1 || err != nil {
		t.Errorf("Get = (%d, %v), want (1, nil)", v, err)
	}
}

func TestCancel(t *testing.T) {
	f := New[int]()
	if !f.Cancel() {
		t.Error("Cancel = false")
	}
	_, err := f.Get()
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("error = %v, want ErrCancelled", err)
	}
}

func TestGetTimeout(t *testing.T) {
	f := New[int]()
	if _, err := f.GetTimeout(5 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("error = %v, want ErrTimeout", err)
	}
	f.Complete(7)
	v, err := f.GetTimeout(time.Second)
	if err != nil || v != 7 {
		t.Errorf("GetTimeout after Complete = (%d, %v)", v, err)
	}
}

func TestGetContext(t *testing.T) {
	f := New[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.GetContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
	f.Complete(9)
	v, err := f.GetContext(context.Background())
	if err != nil || v != 9 {
		t.Errorf("GetContext = (%d, %v)", v, err)
	}
}

func TestListenBeforeSettle(t *testing.T) {
	f := New[int]()
	got := make(chan int, 1)
	f.Listen(func(v int, err error) { got <- v })
	f.Complete(5)
	select {
	case v := <-got:
		if v != 5 {
			t.Errorf("listener got %d, want 5", v)
		}
	case <-time.After(time.Second):
		t.Fatal("listener not invoked")
	}
}

func TestListenAfterSettleRunsImmediately(t *testing.T) {
	f := Completed(3)
	var ran bool
	f.Listen(func(v int, err error) { ran = v == 3 && err == nil })
	if !ran {
		t.Error("listener on settled future did not run synchronously")
	}
}

func TestListenersRunInOrder(t *testing.T) {
	f := New[int]()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		i := i
		f.Listen(func(int, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	f.Complete(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("listeners ran out of order: %v", order)
		}
	}
}

func TestGoSuccessAndFailure(t *testing.T) {
	v, err := Go(func() (int, error) { return 10, nil }).Get()
	if err != nil || v != 10 {
		t.Errorf("Go success = (%d, %v)", v, err)
	}
	_, err = Go(func() (int, error) { return 0, errBoom }).Get()
	if !errors.Is(err, errBoom) {
		t.Errorf("Go failure = %v", err)
	}
}

func TestThen(t *testing.T) {
	f := Completed(4)
	g := Then(f, func(v int) (string, error) {
		if v != 4 {
			return "", errBoom
		}
		return "four", nil
	})
	s, err := g.Get()
	if err != nil || s != "four" {
		t.Errorf("Then = (%q, %v)", s, err)
	}
}

func TestThenPropagatesError(t *testing.T) {
	f := Failed[int](errBoom)
	called := false
	g := Then(f, func(int) (int, error) { called = true; return 0, nil })
	if _, err := g.Get(); !errors.Is(err, errBoom) {
		t.Errorf("error = %v, want boom", err)
	}
	if called {
		t.Error("next ran despite upstream failure")
	}
}

func TestThenNextError(t *testing.T) {
	g := Then(Completed(1), func(int) (int, error) { return 0, errBoom })
	if _, err := g.Get(); !errors.Is(err, errBoom) {
		t.Errorf("error = %v, want boom", err)
	}
}

func TestAll(t *testing.T) {
	fs := []*Future[int]{New[int](), New[int](), New[int]()}
	all := All(fs...)
	fs[2].Complete(3)
	fs[0].Complete(1)
	if all.IsDone() {
		t.Error("All settled before every input")
	}
	fs[1].Complete(2)
	vs, err := all.Get()
	if err != nil {
		t.Fatalf("All error = %v", err)
	}
	for i, v := range vs {
		if v != i+1 {
			t.Errorf("values = %v, want [1 2 3]", vs)
			break
		}
	}
}

func TestAllFirstError(t *testing.T) {
	fs := []*Future[int]{New[int](), New[int]()}
	all := All(fs...)
	fs[1].Fail(errBoom)
	if _, err := all.Get(); !errors.Is(err, errBoom) {
		t.Errorf("error = %v, want boom", err)
	}
	fs[0].Complete(1) // late success must be harmless
}

func TestAllEmpty(t *testing.T) {
	vs, err := All[int]().Get()
	if err != nil || vs != nil {
		t.Errorf("All() = (%v, %v)", vs, err)
	}
}

func TestAnyFirstSuccess(t *testing.T) {
	fs := []*Future[int]{New[int](), New[int](), New[int]()}
	any := Any(fs...)
	fs[0].Fail(errBoom)
	fs[1].Complete(99)
	v, err := any.Get()
	if err != nil || v != 99 {
		t.Errorf("Any = (%d, %v), want (99, nil)", v, err)
	}
	fs[2].Complete(1)
}

func TestAnyAllFail(t *testing.T) {
	fs := []*Future[int]{New[int](), New[int]()}
	any := Any(fs...)
	fs[0].Fail(errors.New("first"))
	fs[1].Fail(errBoom)
	if _, err := any.Get(); err == nil {
		t.Error("Any of all-failed should fail")
	}
}

func TestAnyEmpty(t *testing.T) {
	if _, err := Any[int]().Get(); err == nil {
		t.Error("Any() should fail")
	}
}

func TestPoolBoundedConcurrency(t *testing.T) {
	p, err := NewPool(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var cur, peak int32
	var fs []*Future[int]
	for i := 0; i < 50; i++ {
		fs = append(fs, Submit(p, func() (int, error) {
			n := atomic.AddInt32(&cur, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&cur, -1)
			return 1, nil
		}))
	}
	for _, f := range fs {
		if _, err := f.Get(); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&peak); got > 3 {
		t.Errorf("peak concurrency = %d, want <= 3", got)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	f := Submit(p, func() (int, error) { return 1, nil })
	if _, err := f.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("error = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseWaitsForTasks(t *testing.T) {
	p, err := NewPool(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	var done int32
	for i := 0; i < 10; i++ {
		Submit(p, func() (int, error) {
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt32(&done, 1)
			return 0, nil
		})
	}
	p.Close()
	if got := atomic.LoadInt32(&done); got != 10 {
		t.Errorf("Close returned with %d/10 tasks done", got)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p, err := NewPool(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // must not panic
}

func TestPoolInvalidConfig(t *testing.T) {
	if _, err := NewPool(0, 1); err == nil {
		t.Error("workers=0 should error")
	}
	if _, err := NewPool(1, -1); err == nil {
		t.Error("queueDepth=-1 should error")
	}
}

func TestPoolTaskError(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := Submit(p, func() (string, error) { return "", errBoom })
	if _, err := f.Get(); !errors.Is(err, errBoom) {
		t.Errorf("error = %v, want boom", err)
	}
}

func TestConcurrentSettleRace(t *testing.T) {
	// Many goroutines racing to settle; exactly one must win.
	for round := 0; round < 50; round++ {
		f := New[int]()
		var wins int32
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if f.Complete(i) {
					atomic.AddInt32(&wins, 1)
				}
			}(i)
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("round %d: %d winners, want 1", round, wins)
		}
	}
}

func TestTrySubmitSaturatedPool(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	busy := TrySubmit(p, func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started // worker occupied
	queued := TrySubmit(p, func() (int, error) { return 2, nil })
	overflow := TrySubmit(p, func() (int, error) { return 3, nil })
	if _, err := overflow.GetTimeout(time.Second); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("overflow err = %v, want ErrPoolSaturated", err)
	}
	release <- struct{}{}
	if v, err := busy.GetTimeout(time.Second); err != nil || v != 1 {
		t.Fatalf("busy = %d, %v", v, err)
	}
	if v, err := queued.GetTimeout(time.Second); err != nil || v != 2 {
		t.Fatalf("queued = %d, %v", v, err)
	}
}

func TestTrySubmitClosedPool(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	f := TrySubmit(p, func() (int, error) { return 1, nil })
	if _, err := f.GetTimeout(time.Second); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestSubmitCtxRuns(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := SubmitCtx(context.Background(), p, func() (int, error) { return 42, nil })
	if v, err := f.GetTimeout(time.Second); err != nil || v != 42 {
		t.Fatalf("f = %d, %v", v, err)
	}
}

func TestSubmitCtxAlreadyCancelled(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	f := SubmitCtx(ctx, p, func() (int, error) { ran = true; return 1, nil })
	if _, err := f.GetTimeout(time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("cancelled submission still ran")
	}
}

func TestSubmitCtxQueuedTaskSkippedAfterCancel(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	release := make(chan struct{})
	busy := Submit(p, func() (int, error) { <-release; return 1, nil })
	// The worker is occupied, so this task sits in the queue.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	queued := SubmitCtx(ctx, p, func() (int, error) { ran.Store(true); return 2, nil })
	cancel() // cancel while queued
	close(release)
	if _, err := queued.GetTimeout(time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Error("doomed queued task ran to completion despite cancellation")
	}
	if v, err := busy.GetTimeout(time.Second); err != nil || v != 1 {
		t.Fatalf("busy = %d, %v", v, err)
	}
}

func TestSubmitCtxUnblocksSaturatedEnqueue(t *testing.T) {
	p, err := NewPool(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	release := make(chan struct{})
	busy := Submit(p, func() (int, error) { <-release; return 1, nil })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Future[int], 1)
	go func() {
		// Blocks: no queue slot and the only worker is busy.
		done <- SubmitCtx(ctx, p, func() (int, error) { return 2, nil })
	}()
	time.Sleep(10 * time.Millisecond) // let the submitter block
	cancel()
	select {
	case f := <-done:
		if _, err := f.GetTimeout(time.Second); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancellation did not unblock the saturated enqueue")
	}
	close(release)
	if v, err := busy.GetTimeout(time.Second); err != nil || v != 1 {
		t.Fatalf("busy = %d, %v", v, err)
	}
}

func TestSubmitCtxClosedPool(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	f := SubmitCtx(context.Background(), p, func() (int, error) { return 1, nil })
	if _, err := f.GetTimeout(time.Second); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestSubmitCtxCancelCausePropagates(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cause := errors.New("stage aborted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	f := SubmitCtx(ctx, p, func() (int, error) { return 1, nil })
	if _, err := f.GetTimeout(time.Second); !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}
