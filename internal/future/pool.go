package future

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrPoolClosed is returned by Submit after Close has been called.
var ErrPoolClosed = errors.New("future: pool closed")

// ErrPoolSaturated is carried by the failed future TrySubmit returns when
// the pool's queue is full: every worker is busy and no queue slot is free.
var ErrPoolSaturated = errors.New("future: pool saturated")

// Pool is a bounded worker pool: at most Workers tasks execute
// concurrently, and at most QueueDepth tasks wait. Submit blocks when the
// queue is full, providing natural backpressure instead of unbounded
// goroutine growth.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given number of workers and queue depth.
// workers must be >= 1; queueDepth >= 0 (0 means hand-off only).
func NewPool(workers, queueDepth int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("future: workers %d < 1", workers)
	}
	if queueDepth < 0 {
		return nil, fmt.Errorf("future: queueDepth %d < 0", queueDepth)
	}
	p := &Pool{tasks: make(chan func(), queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p, nil
}

// Submit schedules fn on the pool and returns a future for its result. It
// blocks while the queue is full and returns a failed future if the pool is
// closed.
func Submit[T any](p *Pool, fn func() (T, error)) *Future[T] {
	f := New[T]()
	task := func() {
		v, err := fn()
		if err != nil {
			f.Fail(err)
			return
		}
		f.Complete(v)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		f.Fail(ErrPoolClosed)
		return f
	}
	// Enqueue while holding the lock so Close cannot close the channel
	// between the check and the send. Queue-full backpressure therefore
	// also briefly blocks other submitters, which is acceptable: the pool
	// is saturated either way.
	p.tasks <- task
	p.mu.Unlock()
	return f
}

// TrySubmit is Submit without the queue-full blocking: if the pool's queue
// has no free slot the returned future fails immediately with
// ErrPoolSaturated (and with ErrPoolClosed after Close). Callers that must
// not stall on a saturated pool — the SDK's asynchronous invocation, for
// example — use it to turn backpressure into an explicit, observable error.
func TrySubmit[T any](p *Pool, fn func() (T, error)) *Future[T] {
	f := New[T]()
	task := func() {
		v, err := fn()
		if err != nil {
			f.Fail(err)
			return
		}
		f.Complete(v)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		f.Fail(ErrPoolClosed)
		return f
	}
	select {
	case p.tasks <- task:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		f.Fail(ErrPoolSaturated)
	}
	return f
}

// SubmitCtx is Submit bound to a context. Cancellation propagates into the
// pool at every step: a task whose context is already cancelled is never
// enqueued, a submitter blocked on a full queue unblocks when the context
// is cancelled, and a task still queued when the context is cancelled fails
// fast — with the context's cause — instead of running doomed work to
// completion.
func SubmitCtx[T any](ctx context.Context, p *Pool, fn func() (T, error)) *Future[T] {
	f := New[T]()
	if ctx.Err() != nil {
		f.Fail(context.Cause(ctx))
		return f
	}
	task := func() {
		// Re-check at execution time: the context may have been cancelled
		// while the task sat in the queue.
		if ctx.Err() != nil {
			f.Fail(context.Cause(ctx))
			return
		}
		v, err := fn()
		if err != nil {
			f.Fail(err)
			return
		}
		f.Complete(v)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		f.Fail(ErrPoolClosed)
		return f
	}
	// As in Submit, the enqueue holds the lock so Close cannot close the
	// channel mid-send; the select adds a context escape hatch so a
	// cancelled caller does not stay wedged behind a saturated queue.
	select {
	case p.tasks <- task:
		p.mu.Unlock()
	case <-ctx.Done():
		p.mu.Unlock()
		f.Fail(context.Cause(ctx))
	}
	return f
}

// Close stops accepting tasks and waits for queued and running tasks to
// finish. It is safe to call multiple times.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
