// Package future implements the asynchronous-invocation substrate of the
// rich SDK (paper §2): futures in the style of Guava's ListenableFuture —
// completion checks, blocking and timed gets, and registered callbacks that
// run when the future completes — plus bounded worker pools so that
// parallel service fan-out cannot create an unbounded number of goroutines
// (paper §2.1: "to prevent the number of threads from becoming too large in
// corner cases, we use thread pools of limited size").
package future

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrTimeout is returned by GetTimeout when the deadline passes before the
// future completes.
var ErrTimeout = errors.New("future: timed out")

// ErrCancelled is the error carried by a future that was cancelled before
// completing.
var ErrCancelled = errors.New("future: cancelled")

// Future is the result of an asynchronous computation, mirroring the
// ListenableFuture interface the paper builds on: IsDone, blocking Get,
// timed Get, and Listen to register completion callbacks.
type Future[T any] struct {
	mu        sync.Mutex
	done      chan struct{} // closed exactly once on completion
	value     T
	err       error
	listeners []func(T, error)
}

// New returns an incomplete Future whose value will be supplied via
// Complete or Fail.
func New[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// Completed returns an already-successful future holding v.
func Completed[T any](v T) *Future[T] {
	f := New[T]()
	f.Complete(v)
	return f
}

// Failed returns an already-failed future holding err.
func Failed[T any](err error) *Future[T] {
	f := New[T]()
	f.Fail(err)
	return f
}

// Complete fulfils the future with v and runs listeners synchronously in
// registration order. It reports false if the future was already settled.
func (f *Future[T]) Complete(v T) bool { return f.settle(v, nil) }

// Fail settles the future with err and runs listeners. It reports false if
// the future was already settled.
func (f *Future[T]) Fail(err error) bool {
	var zero T
	if err == nil {
		err = errors.New("future: Fail called with nil error")
	}
	return f.settle(zero, err)
}

// Cancel settles the future with ErrCancelled. It reports false if the
// future was already settled.
func (f *Future[T]) Cancel() bool {
	var zero T
	return f.settle(zero, ErrCancelled)
}

func (f *Future[T]) settle(v T, err error) bool {
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		return false
	default:
	}
	f.value, f.err = v, err
	listeners := f.listeners
	f.listeners = nil
	close(f.done)
	f.mu.Unlock()
	for _, l := range listeners {
		l(v, err)
	}
	return true
}

// IsDone reports whether the future has settled.
func (f *Future[T]) IsDone() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Get blocks until the future settles and returns its outcome.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.value, f.err
}

// GetTimeout blocks for at most d. It returns ErrTimeout if the future has
// not settled in time; the future itself is unaffected.
func (f *Future[T]) GetTimeout(d time.Duration) (T, error) {
	select {
	case <-f.done:
		return f.value, f.err
	case <-time.After(d):
		var zero T
		return zero, ErrTimeout
	}
}

// GetContext blocks until the future settles or ctx is done, returning
// ctx.Err() in the latter case.
func (f *Future[T]) GetContext(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.value, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Done returns a channel closed when the future settles, for use in select
// statements.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Listen registers fn to run when the future settles. If it has already
// settled, fn runs immediately in the calling goroutine; otherwise it runs
// in the goroutine that settles the future. This is the ListenableFuture
// callback-registration feature the paper highlights.
func (f *Future[T]) Listen(fn func(T, error)) {
	f.mu.Lock()
	select {
	case <-f.done:
		v, err := f.value, f.err
		f.mu.Unlock()
		fn(v, err)
		return
	default:
	}
	f.listeners = append(f.listeners, fn)
	f.mu.Unlock()
}

// Go runs fn in a new goroutine and returns a future for its result. For
// bounded concurrency use Pool.Submit instead.
func Go[T any](fn func() (T, error)) *Future[T] {
	f := New[T]()
	go func() {
		v, err := fn()
		if err != nil {
			f.Fail(err)
			return
		}
		f.Complete(v)
	}()
	return f
}

// Then returns a future for next applied to f's successful value; errors
// pass through without invoking next.
func Then[T, U any](f *Future[T], next func(T) (U, error)) *Future[U] {
	out := New[U]()
	f.Listen(func(v T, err error) {
		if err != nil {
			out.Fail(err)
			return
		}
		u, err := next(v)
		if err != nil {
			out.Fail(err)
			return
		}
		out.Complete(u)
	})
	return out
}

// All returns a future that completes with every input's value once all
// succeed, or fails with the first error to occur.
func All[T any](fs ...*Future[T]) *Future[[]T] {
	out := New[[]T]()
	if len(fs) == 0 {
		out.Complete(nil)
		return out
	}
	var mu sync.Mutex
	remaining := len(fs)
	values := make([]T, len(fs))
	for i, f := range fs {
		i, f := i, f
		f.Listen(func(v T, err error) {
			if err != nil {
				out.Fail(err)
				return
			}
			mu.Lock()
			values[i] = v
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				out.Complete(values)
			}
		})
	}
	return out
}

// Any returns a future that completes with the first input to succeed, or —
// if every input fails — fails with the last error observed.
func Any[T any](fs ...*Future[T]) *Future[T] {
	out := New[T]()
	if len(fs) == 0 {
		out.Fail(errors.New("future: Any of zero futures"))
		return out
	}
	var mu sync.Mutex
	remaining := len(fs)
	for _, f := range fs {
		f.Listen(func(v T, err error) {
			if err == nil {
				out.Complete(v)
				return
			}
			mu.Lock()
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				out.Fail(err)
			}
		})
	}
	return out
}
