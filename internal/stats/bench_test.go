package stats

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 50
	}
	return xs
}

func BenchmarkSummarize10k(b *testing.B) {
	xs := benchSeries(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentile10k(b *testing.B) {
	xs := benchSeries(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Percentile(xs, 99); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitLinear1k(b *testing.B) {
	n := 1000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3 + 0.5*float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitLinear(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitMulti3Features(b *testing.B) {
	n := 500
	feats := make([][]float64, n)
	ys := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range feats {
		feats[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = 1 + 2*feats[i][0] - feats[i][1] + 0.5*feats[i][2]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitMulti(feats, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReservoirObserve(b *testing.B) {
	r := NewReservoir(1024, rand.New(rand.NewSource(1)).Float64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(float64(i))
	}
}
