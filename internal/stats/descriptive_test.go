package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{
			name: "single value",
			xs:   []float64{5},
			want: Summary{N: 1, Mean: 5, Min: 5, Max: 5, Sum: 5},
		},
		{
			name: "simple series",
			xs:   []float64{2, 4, 4, 4, 5, 5, 7, 9},
			want: Summary{N: 8, Mean: 5, Variance: 32.0 / 7, StdDev: math.Sqrt(32.0 / 7), Min: 2, Max: 9, Sum: 40},
		},
		{
			name: "negative values",
			xs:   []float64{-3, -1, 1, 3},
			want: Summary{N: 4, Mean: 0, Variance: 20.0 / 3, StdDev: math.Sqrt(20.0 / 3), Min: -3, Max: 3, Sum: 0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Summarize(tt.xs)
			if err != nil {
				t.Fatalf("Summarize() error = %v", err)
			}
			if got.N != tt.want.N || !almostEqual(got.Mean, tt.want.Mean, 1e-9) ||
				!almostEqual(got.Variance, tt.want.Variance, 1e-9) ||
				!almostEqual(got.Min, tt.want.Min, 0) || !almostEqual(got.Max, tt.want.Max, 0) ||
				!almostEqual(got.Sum, tt.want.Sum, 1e-9) {
				t.Errorf("Summarize() = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"odd", []float64{5, 1, 3}, 3},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"duplicates", []float64{2, 2, 2, 2}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.xs); got != tt.want {
				t.Errorf("Median(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5},
		{25, 3.25},
		{90, 9.1},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v) error = %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{10, 1, 5, 3, 8, 2, 9, 4, 7, 6}
	got, err := Percentiles(xs, 0, 25, 50, 90, 100)
	if err != nil {
		t.Fatalf("Percentiles error = %v", err)
	}
	// Each value must agree with the single-percentile path.
	for i, p := range []float64{0, 25, 50, 90, 100} {
		want, _ := Percentile(xs, p)
		if !almostEqual(got[i], want, 1e-9) {
			t.Errorf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
	if xs[0] != 10 {
		t.Errorf("Percentiles mutated input: %v", xs)
	}
	if _, err := Percentiles(nil, 50); err != ErrEmpty {
		t.Errorf("empty input error = %v, want ErrEmpty", err)
	}
	if _, err := Percentiles(xs, 50, 101); err == nil {
		t.Error("out-of-range p should error")
	}
	if out, err := Percentiles(xs); err != nil || len(out) != 0 {
		t.Errorf("no-percentile call = %v, %v; want empty, nil", out, err)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty input error = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1 should error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101 should error")
	}
}

func TestCorrelation(t *testing.T) {
	// Perfect positive correlation.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatalf("Correlation error = %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", r)
	}
	// Perfect negative correlation.
	ysNeg := []float64{8, 6, 4, 2}
	r, err = Correlation(xs, ysNeg)
	if err != nil {
		t.Fatalf("Correlation error = %v", err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero-variance series should error")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA should not be initialized")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Errorf("first observation: Value = %v, want 10", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Errorf("Value = %v, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Errorf("Value = %v, want 15", e.Value())
	}
}

func TestEWMAInvalidAlphaDefaults(t *testing.T) {
	e := NewEWMA(-1)
	e.Observe(1)
	e.Observe(2)
	if v := e.Value(); v <= 1 || v >= 2 {
		t.Errorf("default-alpha EWMA Value = %v, want within (1, 2)", v)
	}
}

func TestMeanPropertyBounds(t *testing.T) {
	// Property: mean is always within [min, max] of the sample.
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s, err := Summarize(clean)
		if err != nil {
			return false
		}
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	// Property: percentile is monotone non-decreasing in p.
	f := func(raw []float64, p1, p2 float64) bool {
		clean := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 101)
		p2 = math.Mod(math.Abs(p2), 101)
		if p1 > 100 {
			p1 = 100
		}
		if p2 > 100 {
			p2 = 100
		}
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(clean, p1)
		v2, err2 := Percentile(clean, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 <= v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
