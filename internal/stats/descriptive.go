// Package stats provides the statistical and mathematical analysis
// substrate for the rich SDK and the personalized knowledge base. It stands
// in for the Apache Commons Math library used by the paper: descriptive
// statistics, histograms, linear / polynomial / multiple regression,
// correlation, exponentially weighted averages, reservoir sampling, and
// streaming percentile estimation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that require at least one observation.
var ErrEmpty = errors.New("stats: no observations")

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // sample variance (n-1 denominator)
	StdDev   float64
	Min      float64
	Max      float64
	Sum      float64
}

// Summarize computes descriptive statistics over xs. It returns ErrEmpty if
// xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for empty input
// and an error for out-of-range p. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return percentileSorted(cp, p), nil
}

// Percentiles returns the percentiles for each p in ps (0 <= p <= 100),
// sorting xs only once. It returns ErrEmpty for empty input and an error
// for any out-of-range p. xs is not modified.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	for _, p := range ps {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
		}
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(cp, p)
	}
	return out, nil
}

// percentileSorted reads the p-th percentile from an already-sorted,
// non-empty slice using linear interpolation between closest ranks.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the lengths differ, fewer than two points are
// given, or either series has zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// EWMA is an exponentially weighted moving average. The zero value is not
// ready; construct with NewEWMA. EWMA is not safe for concurrent use.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.init }
