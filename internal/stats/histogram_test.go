package stats

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("max == min should error")
	}
	if _, err := NewHistogram(10, 5, 5); err == nil {
		t.Error("max < min should error")
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Observe(x)
	}
	want := []uint64{2, 1, 1, 0, 1}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	h.Observe(-100)
	h.Observe(100)
	counts := h.Counts()
	if counts[0] != 1 {
		t.Errorf("below-range observation should clamp to first bin, got %v", counts)
	}
	if counts[4] != 1 {
		t.Errorf("above-range observation should clamp to last bin, got %v", counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median estimate = %v, want ~50", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95 || p99 > 100 {
		t.Errorf("p99 estimate = %v, want ~99", p99)
	}
	if q := h.Quantile(-0.5); q < 0 {
		t.Errorf("clamped quantile = %v, want >= 0", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	h.Observe(1)
	h.Observe(6)
	h.Observe(7)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("String() = %q, want bars", s)
	}
	if got := strings.Count(s, "\n"); got != 2 {
		t.Errorf("String() has %d lines, want 2 (empty bins skipped)", got)
	}
}

func TestReservoirUnderCapacity(t *testing.T) {
	r := NewReservoir(10, rand.New(rand.NewSource(1)).Float64)
	for i := 0; i < 5; i++ {
		r.Observe(float64(i))
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d, want 5", r.Seen())
	}
	s := r.Sample()
	if len(s) != 5 {
		t.Errorf("sample size = %d, want 5", len(s))
	}
}

func TestReservoirBoundedSize(t *testing.T) {
	r := NewReservoir(16, rand.New(rand.NewSource(42)).Float64)
	for i := 0; i < 10000; i++ {
		r.Observe(float64(i))
	}
	if len(r.Sample()) != 16 {
		t.Errorf("sample size = %d, want 16", len(r.Sample()))
	}
	if r.Seen() != 10000 {
		t.Errorf("Seen = %d, want 10000", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Statistical check: mean of a large reservoir over uniform stream
	// should approximate the stream mean.
	r := NewReservoir(1000, rand.New(rand.NewSource(7)).Float64)
	for i := 0; i < 100000; i++ {
		r.Observe(float64(i))
	}
	m := Mean(r.Sample())
	if m < 40000 || m > 60000 {
		t.Errorf("reservoir mean = %v, want ~50000", m)
	}
}

func TestReservoirSortedSample(t *testing.T) {
	r := NewReservoir(4, rand.New(rand.NewSource(1)).Float64)
	for _, x := range []float64{3, 1, 2} {
		r.Observe(x)
	}
	s := r.SortedSample()
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Errorf("SortedSample not sorted: %v", s)
		}
	}
}

func TestReservoirMinCapacity(t *testing.T) {
	r := NewReservoir(0, rand.New(rand.NewSource(1)).Float64)
	r.Observe(1)
	r.Observe(2)
	if len(r.Sample()) != 1 {
		t.Errorf("capacity clamped to 1, sample size = %d", len(r.Sample()))
	}
}
