package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts observations into fixed-width bins over [Min, Max).
// Observations outside the range are clamped into the first or last bin so
// no data is silently dropped. The zero value is not ready; construct with
// NewHistogram. Histogram is not safe for concurrent use.
type Histogram struct {
	min, max float64
	width    float64
	counts   []uint64
	total    uint64
}

// NewHistogram returns a histogram with bins equal-width bins over
// [min, max). bins must be >= 1 and max must exceed min.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins %d < 1", bins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: max %v <= min %v", max, min)
	}
	return &Histogram{
		min:    min,
		max:    max,
		width:  (max - min) / float64(bins),
		counts: make([]uint64, bins),
	}, nil
}

// Observe adds x to the histogram.
func (h *Histogram) Observe(x float64) {
	idx := int(math.Floor((x - h.min) / h.width))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// BinBounds returns the [lo, hi) bounds of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	lo = h.min + float64(i)*h.width
	return lo, lo + h.width
}

// Quantile returns an estimate of quantile q (0 <= q <= 1) assuming
// observations are uniform within each bin. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			lo, _ := h.BinBounds(i)
			return lo + frac*h.width
		}
		cum = next
	}
	return h.max
}

// String renders a compact ASCII bar chart, one line per non-empty bin.
func (h *Histogram) String() string {
	var b strings.Builder
	var maxCount uint64
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BinBounds(i)
		bar := 1
		if maxCount > 0 {
			bar = int(float64(c) / float64(maxCount) * 40)
			if bar < 1 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "[%10.3f, %10.3f) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Reservoir maintains a uniform random sample of bounded size over an
// unbounded stream (Vitter's Algorithm R). It underpins latency-history
// tracking: the SDK keeps a representative sample without unbounded memory.
// Reservoir is not safe for concurrent use.
type Reservoir struct {
	capacity int
	seen     uint64
	items    []float64
	rnd      func() float64 // uniform [0,1); injectable for determinism
}

// NewReservoir returns a reservoir holding at most capacity samples. rnd
// supplies uniform [0,1) values; it must be non-nil.
func NewReservoir(capacity int, rnd func() float64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{capacity: capacity, rnd: rnd, items: make([]float64, 0, capacity)}
}

// Observe offers x to the reservoir.
func (r *Reservoir) Observe(x float64) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, x)
		return
	}
	// Replace a random slot with probability capacity/seen.
	j := uint64(r.rnd() * float64(r.seen))
	if j < uint64(r.capacity) {
		r.items[j] = x
	}
}

// Seen returns the total number of observations offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	out := make([]float64, len(r.items))
	copy(out, r.items)
	return out
}

// SortedSample returns the current sample in ascending order.
func (r *Reservoir) SortedSample() []float64 {
	out := r.Sample()
	sort.Float64s(out)
	return out
}
