package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearModel is a fitted simple linear regression y = Intercept + Slope*x.
type LinearModel struct {
	Intercept float64
	Slope     float64
	R2        float64 // coefficient of determination on the training data
	N         int
}

// FitLinear fits a least-squares line through (xs, ys). It returns an error
// if the lengths differ, fewer than two points are supplied, or all x values
// are identical.
func FitLinear(xs, ys []float64) (LinearModel, error) {
	if len(xs) != len(ys) {
		return LinearModel{}, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinearModel{}, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearModel{}, errors.New("stats: all x values identical")
	}
	m := LinearModel{Slope: sxy / sxx, N: n}
	m.Intercept = my - m.Slope*mx
	var ssRes, ssTot float64
	for i := range xs {
		pred := m.Intercept + m.Slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	return m, nil
}

// Predict returns the model's estimate at x.
func (m LinearModel) Predict(x float64) float64 {
	return m.Intercept + m.Slope*x
}

// PolyModel is a fitted polynomial regression
// y = Coef[0] + Coef[1]*x + ... + Coef[d]*x^d.
type PolyModel struct {
	Coef []float64
	R2   float64
	N    int
}

// FitPoly fits a degree-d polynomial by least squares using the normal
// equations. degree must be >= 1 and len(xs) must exceed the degree.
func FitPoly(xs, ys []float64, degree int) (PolyModel, error) {
	if degree < 1 {
		return PolyModel{}, fmt.Errorf("stats: degree %d < 1", degree)
	}
	if len(xs) != len(ys) {
		return PolyModel{}, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) <= degree {
		return PolyModel{}, fmt.Errorf("stats: need > %d points for degree %d, got %d", degree, degree, len(xs))
	}
	// Build the design matrix rows [1, x, x^2, ..., x^d].
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree+1)
		v := 1.0
		for j := 0; j <= degree; j++ {
			row[j] = v
			v *= x
		}
		rows[i] = row
	}
	coef, err := solveLeastSquares(rows, ys)
	if err != nil {
		return PolyModel{}, err
	}
	m := PolyModel{Coef: coef, N: len(xs)}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		pred := m.Predict(xs[i])
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	return m, nil
}

// Predict evaluates the polynomial at x using Horner's rule.
func (m PolyModel) Predict(x float64) float64 {
	var y float64
	for i := len(m.Coef) - 1; i >= 0; i-- {
		y = y*x + m.Coef[i]
	}
	return y
}

// MultiModel is a fitted multiple linear regression
// y = Coef[0] + Coef[1]*x1 + ... + Coef[k]*xk.
type MultiModel struct {
	Coef []float64
	R2   float64
	N    int
}

// FitMulti fits a multiple linear regression where each row of features is
// one observation's predictor vector. All rows must have the same length k,
// and at least k+1 observations are required.
func FitMulti(features [][]float64, ys []float64) (MultiModel, error) {
	if len(features) != len(ys) {
		return MultiModel{}, fmt.Errorf("stats: length mismatch %d != %d", len(features), len(ys))
	}
	if len(features) == 0 {
		return MultiModel{}, ErrEmpty
	}
	k := len(features[0])
	if len(features) < k+1 {
		return MultiModel{}, fmt.Errorf("stats: need >= %d observations for %d features, got %d", k+1, k, len(features))
	}
	rows := make([][]float64, len(features))
	for i, f := range features {
		if len(f) != k {
			return MultiModel{}, fmt.Errorf("stats: row %d has %d features, want %d", i, len(f), k)
		}
		row := make([]float64, k+1)
		row[0] = 1
		copy(row[1:], f)
		rows[i] = row
	}
	coef, err := solveLeastSquares(rows, ys)
	if err != nil {
		return MultiModel{}, err
	}
	m := MultiModel{Coef: coef, N: len(features)}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range features {
		pred := m.Predict(features[i])
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	return m, nil
}

// Predict returns the model's estimate for the feature vector x. Missing
// trailing features are treated as zero; extra features are ignored.
func (m MultiModel) Predict(x []float64) float64 {
	y := m.Coef[0]
	for i := 1; i < len(m.Coef); i++ {
		if i-1 < len(x) {
			y += m.Coef[i] * x[i-1]
		}
	}
	return y
}

// solveLeastSquares solves min ||A c - y||^2 via the normal equations
// (A^T A) c = A^T y with Gaussian elimination and partial pivoting.
func solveLeastSquares(a [][]float64, y []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, ErrEmpty
	}
	k := len(a[0])
	// ata = A^T A (k x k), aty = A^T y (k).
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	aty := make([]float64, k)
	for r := 0; r < n; r++ {
		row := a[r]
		for i := 0; i < k; i++ {
			aty[i] += row[i] * y[r]
			for j := i; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	return solveLinearSystem(ata, aty)
}

// solveLinearSystem solves M x = b in place with partial pivoting. M and b
// are modified.
func solveLinearSystem(m [][]float64, b []float64) ([]float64, error) {
	k := len(m)
	for col := 0; col < k; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, errors.New("stats: singular design matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < k; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				m[r][c] -= f * m[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < k; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}
