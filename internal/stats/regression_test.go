package stats

import (
	"math"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2x fitted exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatalf("FitLinear error = %v", err)
	}
	if !almostEqual(m.Intercept, 3, 1e-9) || !almostEqual(m.Slope, 2, 1e-9) {
		t.Errorf("model = %+v, want intercept 3 slope 2", m)
	}
	if !almostEqual(m.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", m.R2)
	}
	if got := m.Predict(10); !almostEqual(got, 23, 1e-9) {
		t.Errorf("Predict(10) = %v, want 23", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	// Noisy but strongly linear data should recover slope approximately.
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		x := float64(i)
		noise := math.Sin(float64(i) * 12.9898) // deterministic pseudo-noise in [-1,1]
		xs[i] = x
		ys[i] = 5 + 0.5*x + noise
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatalf("FitLinear error = %v", err)
	}
	if math.Abs(m.Slope-0.5) > 0.05 {
		t.Errorf("Slope = %v, want ~0.5", m.Slope)
	}
	if m.R2 < 0.95 {
		t.Errorf("R2 = %v, want > 0.95", m.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		ys   []float64
	}{
		{"mismatched", []float64{1, 2}, []float64{1}},
		{"too few", []float64{1}, []float64{1}},
		{"constant x", []float64{2, 2, 2}, []float64{1, 2, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FitLinear(tt.xs, tt.ys); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestFitPolyExactQuadratic(t *testing.T) {
	// y = 1 - 2x + 0.5x^2
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 2*x + 0.5*x*x
	}
	m, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatalf("FitPoly error = %v", err)
	}
	want := []float64{1, -2, 0.5}
	for i, w := range want {
		if !almostEqual(m.Coef[i], w, 1e-8) {
			t.Errorf("Coef[%d] = %v, want %v", i, m.Coef[i], w)
		}
	}
	if got := m.Predict(5); !almostEqual(got, 1-10+12.5, 1e-8) {
		t.Errorf("Predict(5) = %v, want 3.5", got)
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Error("degree 0 should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("too few points should error")
	}
	if _, err := FitPoly([]float64{1, 2, 3}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestFitMultiExact(t *testing.T) {
	// y = 2 + 3a - b over a small grid.
	var feats [][]float64
	var ys []float64
	for a := 0.0; a < 4; a++ {
		for b := 0.0; b < 4; b++ {
			feats = append(feats, []float64{a, b})
			ys = append(ys, 2+3*a-b)
		}
	}
	m, err := FitMulti(feats, ys)
	if err != nil {
		t.Fatalf("FitMulti error = %v", err)
	}
	want := []float64{2, 3, -1}
	for i, w := range want {
		if !almostEqual(m.Coef[i], w, 1e-8) {
			t.Errorf("Coef[%d] = %v, want %v", i, m.Coef[i], w)
		}
	}
	if got := m.Predict([]float64{10, 5}); !almostEqual(got, 27, 1e-7) {
		t.Errorf("Predict = %v, want 27", got)
	}
}

func TestFitMultiErrors(t *testing.T) {
	if _, err := FitMulti(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitMulti([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitMulti([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	// Collinear features -> singular matrix.
	feats := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	ys := []float64{1, 2, 3, 4}
	if _, err := FitMulti(feats, ys); err == nil {
		t.Error("collinear features should error")
	}
}

func TestSolveLinearSystemPivoting(t *testing.T) {
	// A system that requires pivoting (zero on the diagonal initially).
	m := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{2, 3}
	x, err := solveLinearSystem(m, b)
	if err != nil {
		t.Fatalf("solveLinearSystem error = %v", err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}
