package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/clock"
)

// Disk is a persistent cache storing each entry as a JSON file under a
// directory. It survives process restarts, which lets an application keep
// serving previously fetched service responses while disconnected (paper
// §2, §3). Disk is safe for concurrent use: each Set writes to its own
// uniquely named temp file and atomically renames it into place, so
// concurrent writers of the same key never interleave and readers never
// observe a torn entry.
type Disk struct {
	dir string
	clk clock.Clock
}

type diskEntry struct {
	Key     string          `json:"key"`
	Expires time.Time       `json:"expires,omitempty"`
	Stored  time.Time       `json:"stored"`
	Value   json.RawMessage `json:"value"`
}

// NewDisk returns a Disk cache rooted at dir, creating it if needed.
func NewDisk(dir string, clk clock.Clock) (*Disk, error) {
	if clk == nil {
		clk = clock.Real()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	return &Disk{dir: dir, clk: clk}, nil
}

func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16])+".json")
}

// Set persists value (JSON-encoded) under key. ttl <= 0 means no expiry.
func (d *Disk) Set(key string, value any, ttl time.Duration) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("cache: encode value: %w", err)
	}
	en := diskEntry{Key: key, Stored: d.clk.Now(), Value: raw}
	if ttl > 0 {
		en.Expires = en.Stored.Add(ttl)
	}
	data, err := json.Marshal(en)
	if err != nil {
		return fmt.Errorf("cache: encode entry: %w", err)
	}
	// Write to a uniquely named temp file, then rename. A fixed temp name
	// (p+".tmp") lets two concurrent Sets of the same key interleave their
	// writes and rename a torn file; CreateTemp gives each writer its own
	// file, and rename(2) makes whichever finishes last win atomically.
	p := d.path(key)
	f, err := os.CreateTemp(d.dir, "write-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: create temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cache: write temp: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: close temp: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: chmod temp: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: rename: %w", err)
	}
	return nil
}

// Get decodes the persisted value for key into out (a pointer). It returns
// ErrNotFound when the key is absent or expired; expired entries are
// removed.
func (d *Disk) Get(key string, out any) error {
	p := d.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrNotFound
		}
		return fmt.Errorf("cache: read: %w", err)
	}
	var en diskEntry
	if err := json.Unmarshal(data, &en); err != nil {
		return fmt.Errorf("cache: decode entry: %w", err)
	}
	if en.Key != key {
		// Hash collision on the filename prefix; treat as a miss.
		return ErrNotFound
	}
	if !en.Expires.IsZero() && !d.clk.Now().Before(en.Expires) {
		_ = os.Remove(p)
		return ErrNotFound
	}
	if err := json.Unmarshal(en.Value, out); err != nil {
		return fmt.Errorf("cache: decode value: %w", err)
	}
	return nil
}

// Delete removes the persisted entry for key; missing keys are not an
// error.
func (d *Disk) Delete(key string) error {
	err := os.Remove(d.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: delete: %w", err)
	}
	return nil
}

// Len counts the persisted entries, including expired ones.
func (d *Disk) Len() (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("cache: list: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// Clear removes every persisted entry.
func (d *Disk) Clear() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("cache: list: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := os.Remove(filepath.Join(d.dir, e.Name())); err != nil {
			return fmt.Errorf("cache: remove %s: %w", e.Name(), err)
		}
	}
	return nil
}
