package cache

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
)

func BenchmarkMemoryGetHit(b *testing.B) {
	m := NewMemory[int](1024)
	for i := 0; i < 1024; i++ {
		m.Set(strconv.Itoa(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Get(strconv.Itoa(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedGetHit(b *testing.B) {
	// 2x capacity: the hash split would otherwise evict from overfull
	// shards (see BenchmarkCacheHitParallel).
	m := NewSharded[int](2048, WithShards(16))
	defer m.Close()
	for i := 0; i < 1024; i++ {
		m.Set(strconv.Itoa(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Get(strconv.Itoa(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryGetMiss(b *testing.B) {
	m := NewMemory[int](64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.Get("absent")
	}
}

func BenchmarkMemorySetWithEviction(b *testing.B) {
	m := NewMemory[int](256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(strconv.Itoa(i), i)
	}
}

func BenchmarkGetOrFillHitPath(b *testing.B) {
	m := NewMemory[int](16)
	g := NewGroup[int]()
	ctx := context.Background()
	if _, _, err := GetOrFill(ctx, m, g, "k", func() (int, error) { return 1, nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GetOrFill(ctx, m, g, "k", func() (int, error) { return 1, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryParallel(b *testing.B) {
	m := NewMemory[int](1024)
	for i := 0; i < 1024; i++ {
		m.Set(strconv.Itoa(i), i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := strconv.Itoa(i % 1024)
			if i%8 == 0 {
				m.Set(key, i)
			} else {
				_, _ = m.Get(key)
			}
			i++
		}
	})
}

// BenchmarkCacheHitParallel is the tentpole guard's benchmark: the pure
// hit path of the single-mutex Memory against the sharded cache at 1-,
// 8-, and 64-goroutine parallelism. b.RunParallel drives exactly the
// requested goroutine count by clamping GOMAXPROCS to the target (never
// above NumCPU) and scaling SetParallelism to make up the difference, so
// "goroutines=64" really is 64 goroutines hammering the hit path. On a
// multi-core machine the sharded cache should hold ≥2x the single-mutex
// throughput at 64-way parallelism while staying within 10% at 1.
func BenchmarkCacheHitParallel(b *testing.B) {
	// Twice the key count in capacity: keys spread over shards by hash,
	// so an exactly-full cache would evict from the shards the split
	// happens to overfill. The benchmark measures the hit path, not
	// eviction behaviour.
	const nkeys = 4096
	impls := []struct {
		name string
		mk   func() Store[int]
	}{
		{"single-mutex", func() Store[int] { return NewMemory[int](2 * nkeys) }},
		{"sharded", func() Store[int] { return NewSharded[int](2*nkeys, WithShards(16)) }},
	}
	for _, goroutines := range []int{1, 8, 64} {
		for _, impl := range impls {
			b.Run(fmt.Sprintf("goroutines=%d/impl=%s", goroutines, impl.name), func(b *testing.B) {
				m := impl.mk()
				defer m.Close()
				keys := make([]string, nkeys)
				for i := range keys {
					keys[i] = "bench-key-" + strconv.Itoa(i)
					m.Set(keys[i], i)
				}
				procs := goroutines
				if n := runtime.NumCPU(); procs > n {
					procs = n
				}
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				b.SetParallelism((goroutines + procs - 1) / procs)
				var ctr atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Offset each goroutine so they spread over the key
					// space instead of marching in lockstep.
					i := int(ctr.Add(1)) * 521
					for pb.Next() {
						if _, err := m.Get(keys[i&(nkeys-1)]); err != nil {
							b.Fatal(err)
						}
						i += 7
					}
				})
			})
		}
	}
}
