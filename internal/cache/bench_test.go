package cache

import (
	"strconv"
	"testing"
)

func BenchmarkMemoryGetHit(b *testing.B) {
	m := NewMemory[int](1024)
	for i := 0; i < 1024; i++ {
		m.Set(strconv.Itoa(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Get(strconv.Itoa(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryGetMiss(b *testing.B) {
	m := NewMemory[int](64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.Get("absent")
	}
}

func BenchmarkMemorySetWithEviction(b *testing.B) {
	m := NewMemory[int](256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(strconv.Itoa(i), i)
	}
}

func BenchmarkGetOrFillHitPath(b *testing.B) {
	m := NewMemory[int](16)
	g := NewGroup[int]()
	if _, _, err := GetOrFill(m, g, "k", func() (int, error) { return 1, nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GetOrFill(m, g, "k", func() (int, error) { return 1, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryParallel(b *testing.B) {
	m := NewMemory[int](1024)
	for i := 0; i < 1024; i++ {
		m.Set(strconv.Itoa(i), i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := strconv.Itoa(i % 1024)
			if i%8 == 0 {
				m.Set(key, i)
			} else {
				_, _ = m.Get(key)
			}
			i++
		}
	})
}
