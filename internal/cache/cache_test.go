package cache

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func TestMemoryGetSet(t *testing.T) {
	m := NewMemory[string](4)
	if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty = %v, want ErrNotFound", err)
	}
	m.Set("a", "1")
	v, err := m.Get("a")
	if err != nil || v != "1" {
		t.Errorf("Get = (%q, %v), want (1, nil)", v, err)
	}
	m.Set("a", "2") // update in place
	v, _ = m.Get("a")
	if v != "2" {
		t.Errorf("updated Get = %q, want 2", v)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory[int](3)
	m.Set("a", 1)
	m.Set("b", 2)
	m.Set("c", 3)
	// Touch "a" so "b" becomes the eviction candidate.
	if _, err := m.Get("a"); err != nil {
		t.Fatal(err)
	}
	m.Set("d", 4)
	if _, err := m.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, err := m.Get(k); err != nil {
			t.Errorf("%s should survive: %v", k, err)
		}
	}
	if s := m.Stats(); s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
}

func TestMemoryTTLExpiry(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	m := NewMemory[int](10, WithTTL[int](time.Minute), WithClock[int](v))
	m.Set("k", 7)
	if _, err := m.Get("k"); err != nil {
		t.Fatalf("fresh entry: %v", err)
	}
	v.Advance(59 * time.Second)
	if _, err := m.Get("k"); err != nil {
		t.Errorf("entry expired early: %v", err)
	}
	v.Advance(2 * time.Second)
	if _, err := m.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Error("entry should have expired")
	}
	if s := m.Stats(); s.Expired != 1 {
		t.Errorf("Expired = %d, want 1", s.Expired)
	}
}

func TestMemorySetTTLOverride(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	m := NewMemory[int](10, WithTTL[int](time.Second), WithClock[int](v))
	m.SetTTL("forever", 1, 0) // explicit no-expiry overrides default
	v.Advance(time.Hour)
	if _, err := m.Get("forever"); err != nil {
		t.Errorf("no-TTL entry expired: %v", err)
	}
}

func TestMemoryDeleteContains(t *testing.T) {
	m := NewMemory[int](4)
	m.Set("a", 1)
	if !m.Contains("a") {
		t.Error("Contains(a) = false")
	}
	if !m.Delete("a") {
		t.Error("Delete(a) = false, want true")
	}
	if m.Delete("a") {
		t.Error("second Delete(a) = true, want false")
	}
	if m.Contains("a") {
		t.Error("Contains after Delete = true")
	}
}

func TestMemoryContainsExpired(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	m := NewMemory[int](4, WithClock[int](v))
	m.SetTTL("a", 1, time.Second)
	v.Advance(2 * time.Second)
	if m.Contains("a") {
		t.Error("Contains should be false for expired entry")
	}
}

func TestMemoryPurge(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	m := NewMemory[int](10, WithClock[int](v))
	m.SetTTL("a", 1, time.Second)
	m.SetTTL("b", 2, time.Hour)
	m.SetTTL("c", 3, 0)
	v.Advance(time.Minute)
	if removed := m.Purge(); removed != 1 {
		t.Errorf("Purge removed %d, want 1", removed)
	}
	if m.Len() != 2 {
		t.Errorf("Len after Purge = %d, want 2", m.Len())
	}
}

func TestMemoryKeysMRUOrder(t *testing.T) {
	m := NewMemory[int](4)
	m.Set("a", 1)
	m.Set("b", 2)
	m.Set("c", 3)
	if _, err := m.Get("a"); err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()
	if len(keys) != 3 || keys[0] != "a" {
		t.Errorf("Keys = %v, want a first (MRU)", keys)
	}
}

func TestMemoryClear(t *testing.T) {
	m := NewMemory[int](4)
	m.Set("a", 1)
	m.Set("b", 2)
	m.Clear()
	if m.Len() != 0 {
		t.Errorf("Len after Clear = %d", m.Len())
	}
	if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Error("entry survived Clear")
	}
}

func TestMemoryCapacityClamped(t *testing.T) {
	m := NewMemory[int](0)
	m.Set("a", 1)
	m.Set("b", 2)
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 (capacity clamped)", m.Len())
	}
}

func TestHitRatio(t *testing.T) {
	m := NewMemory[int](4)
	m.Set("a", 1)
	if _, err := m.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("missing"); err == nil {
		t.Fatal("expected miss")
	}
	s := m.Stats()
	if s.HitRatio() != 0.5 {
		t.Errorf("HitRatio = %v, want 0.5", s.HitRatio())
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio should be 0")
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory[int](128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := strconv.Itoa(i % 200)
				m.Set(k, i)
				if _, err := m.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() > 128 {
		t.Errorf("Len = %d exceeds capacity", m.Len())
	}
}

func TestMemoryNeverExceedsCapacityProperty(t *testing.T) {
	// Property: after any sequence of Sets, Len <= capacity.
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		m := NewMemory[int](capacity)
		for i, k := range keys {
			m.Set(strconv.Itoa(int(k)), i)
			if m.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryLastWriteWinsProperty(t *testing.T) {
	// Property: a Get immediately after Set returns the Set value.
	f := func(key uint8, vals []int) bool {
		m := NewMemory[int](8)
		k := strconv.Itoa(int(key))
		for _, v := range vals {
			m.Set(k, v)
			got, err := m.Get(k)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupDeduplicates(t *testing.T) {
	g := NewGroup[int]()
	var calls int32
	var mu sync.Mutex
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("k", func() (int, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do error: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the four duplicate callers have all registered on the
	// in-flight call, then release it.
	for g.Waiters("k") < 4 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("fn called %d times, want 1", calls)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("result[%d] = %d, want 42", i, v)
		}
	}
}

func TestGroupPropagatesError(t *testing.T) {
	g := NewGroup[int]()
	wantErr := errors.New("fill failed")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("error = %v, want %v", err, wantErr)
	}
	// After completion the key is released and callable again.
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("second Do = (%d, %v)", v, err)
	}
}

func TestGetOrFill(t *testing.T) {
	m := NewMemory[string](4)
	g := NewGroup[string]()
	var fills int
	fill := func() (string, error) {
		fills++
		return "value", nil
	}
	v, hit, err := GetOrFill(m, g, "k", fill)
	if err != nil || hit || v != "value" {
		t.Errorf("first GetOrFill = (%q, %v, %v)", v, hit, err)
	}
	v, hit, err = GetOrFill(m, g, "k", fill)
	if err != nil || !hit || v != "value" {
		t.Errorf("second GetOrFill = (%q, %v, %v), want cache hit", v, hit, err)
	}
	if fills != 1 {
		t.Errorf("fill called %d times, want 1", fills)
	}
}

func TestFillCachesWithoutExtraLookup(t *testing.T) {
	m := NewMemory[string](4)
	g := NewGroup[string]()
	v, err := Fill(m, g, "k", func() (string, error) { return "value", nil })
	if err != nil || v != "value" {
		t.Errorf("Fill = (%q, %v)", v, err)
	}
	// Fill records only the in-flight re-check, so callers that probed the
	// cache themselves don't double-count misses.
	if s := m.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("stats after Fill = %+v, want 0 hits / 1 miss", s)
	}
	if v, err := m.Get("k"); err != nil || v != "value" {
		t.Errorf("Get after Fill = (%q, %v), want cached value", v, err)
	}
}

func TestGetOrFillErrorNotCached(t *testing.T) {
	m := NewMemory[string](4)
	g := NewGroup[string]()
	boom := errors.New("boom")
	if _, _, err := GetOrFill(m, g, "k", func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Errorf("error = %v, want boom", err)
	}
	// Error results must not be cached; next call should retry the fill.
	v, hit, err := GetOrFill(m, g, "k", func() (string, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Errorf("retry = (%q, %v, %v)", v, hit, err)
	}
}

func TestGetOrFillConcurrentSingleFill(t *testing.T) {
	m := NewMemory[int](16)
	g := NewGroup[int]()
	var mu sync.Mutex
	fills := 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := GetOrFill(m, g, "hot", func() (int, error) {
				mu.Lock()
				fills++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return 9, nil
			})
			if err != nil || v != 9 {
				t.Errorf("GetOrFill = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if fills != 1 {
		t.Errorf("fill executed %d times, want 1 (single-flight)", fills)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Name  string `json:"name"`
		Score int    `json:"score"`
	}
	in := payload{Name: "svc", Score: 42}
	if err := d.Set("key1", in, 0); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Get("key1", &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestDiskMissAndDelete(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := d.Get("missing", &out); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	if err := d.Delete("missing"); err != nil {
		t.Errorf("Delete missing = %v, want nil", err)
	}
	if err := d.Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := d.Get("k", &out); !errors.Is(err, ErrNotFound) {
		t.Error("entry survived Delete")
	}
}

func TestDiskTTL(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	d, err := NewDisk(t.TempDir(), v)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set("k", 1, time.Minute); err != nil {
		t.Fatal(err)
	}
	var out int
	if err := d.Get("k", &out); err != nil {
		t.Fatalf("fresh entry: %v", err)
	}
	v.Advance(2 * time.Minute)
	if err := d.Get("k", &out); !errors.Is(err, ErrNotFound) {
		t.Error("entry should have expired")
	}
}

func TestDiskLenClear(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Set(fmt.Sprintf("k%d", i), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := d.Len()
	if err != nil || n != 5 {
		t.Errorf("Len = (%d, %v), want 5", n, err)
	}
	if err := d.Clear(); err != nil {
		t.Fatal(err)
	}
	n, _ = d.Len()
	if n != 0 {
		t.Errorf("Len after Clear = %d", n)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Set("persistent", "hello", 0); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := d2.Get("persistent", &out); err != nil || out != "hello" {
		t.Errorf("reopened Get = (%q, %v)", out, err)
	}
}

func TestDiskUnencodableValue(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set("k", make(chan int), 0); err == nil {
		t.Error("encoding a channel should fail")
	}
}
