package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// The Memory/Sharded behavioural contract lives in conformance_test.go and
// runs against both implementations. This file covers the pieces outside
// that contract: statistics edge cases, TTL jitter, the single-flight
// group, GetOrFill/Fill, and the disk cache.

func TestHitRatioZero(t *testing.T) {
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio should be 0")
	}
}

func TestMemoryTTLJitterBounds(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	m := NewMemory[int](256, WithClock(v), WithTTLJitter(0.5))
	defer m.Close()
	const ttl = time.Minute
	for i := 0; i < 128; i++ {
		m.SetTTL(fmt.Sprintf("k%d", i), i, ttl)
	}
	// All entries live at ttl*(1-j): nothing may expire before the lower
	// jitter bound.
	v.Advance(29 * time.Second)
	if n := m.Purge(); n != 0 {
		t.Errorf("%d entries expired before ttl*(1-jitter)", n)
	}
	// All entries dead at ttl*(1+j).
	v.Advance(62 * time.Second)
	m.Purge()
	if got := m.Len(); got != 0 {
		t.Errorf("Len = %d after ttl*(1+jitter), want 0", got)
	}
	// With 128 entries jittered over a 60s window, at least one should
	// have expired strictly before and one strictly after the nominal
	// TTL with overwhelming probability — i.e. expiry is de-synchronized.
	m2 := NewMemory[int](256, WithClock(v), WithTTLJitter(0.5))
	defer m2.Close()
	for i := 0; i < 128; i++ {
		m2.SetTTL(fmt.Sprintf("k%d", i), i, ttl)
	}
	v.Advance(ttl)
	early := m2.Purge()
	if early == 0 || early == 128 {
		t.Errorf("jitter did not spread expiry: %d/128 expired at the nominal TTL", early)
	}
}

func TestWithTTLJitterClamped(t *testing.T) {
	o := defaultOptions()
	WithTTLJitter(-1)(&o)
	if o.jitter != 0 {
		t.Errorf("negative jitter = %v, want 0", o.jitter)
	}
	WithTTLJitter(7)(&o)
	if o.jitter != 1 {
		t.Errorf("oversized jitter = %v, want 1", o.jitter)
	}
}

func TestGroupDeduplicates(t *testing.T) {
	g := NewGroup[int]()
	var calls int32
	var mu sync.Mutex
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("k", func() (int, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do error: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the four duplicate callers have all registered on the
	// in-flight call, then release it.
	for g.Waiters("k") < 4 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("fn called %d times, want 1", calls)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("result[%d] = %d, want 42", i, v)
		}
	}
}

func TestGroupPropagatesError(t *testing.T) {
	g := NewGroup[int]()
	wantErr := errors.New("fill failed")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("error = %v, want %v", err, wantErr)
	}
	// After completion the key is released and callable again.
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("second Do = (%d, %v)", v, err)
	}
}

// A duplicate caller whose context is cancelled must return ctx.Err()
// immediately instead of waiting out the leader, and must drop out of the
// flight's duplicate accounting.
func TestGroupDoCtxCancelledWaiter(t *testing.T) {
	g := NewGroup[int]()
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, _ := g.Do("k", func() (int, error) {
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader Do = (%d, %v)", v, err)
		}
	}()
	// Wait for the leader's flight to exist.
	for g.Waiters("k") == -1 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err, shared := g.DoCtx(ctx, "k", func() (int, error) { return 0, nil })
		if shared {
			t.Error("cancelled waiter reported shared = true")
		}
		waiterErr <- err
	}()
	for g.Waiters("k") < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still blocked on the leader")
	}
	// The cancelled waiter must have left the duplicate count.
	if w := g.Waiters("k"); w != 0 {
		t.Errorf("Waiters after cancellation = %d, want 0", w)
	}
	close(release)
	<-leaderDone
	if w := g.Waiters("k"); w != -1 {
		t.Errorf("Waiters after completion = %d, want -1", w)
	}
}

// A waiter whose context survives shares the leader's result even when a
// sibling waiter cancelled mid-flight.
func TestGroupDoCtxSurvivingWaiterShares(t *testing.T) {
	g := NewGroup[int]()
	release := make(chan struct{})
	type res struct {
		v      int
		err    error
		shared bool
	}
	leader := make(chan res, 1)
	go func() {
		v, err, shared := g.Do("k", func() (int, error) {
			<-release
			return 9, nil
		})
		leader <- res{v, err, shared}
	}()
	for g.Waiters("k") == -1 {
		time.Sleep(time.Millisecond)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	dropped := make(chan struct{})
	go func() {
		defer close(dropped)
		g.DoCtx(cancelled, "k", func() (int, error) { return 0, nil })
	}()
	survivor := make(chan res, 1)
	go func() {
		v, err, shared := g.DoCtx(context.Background(), "k", func() (int, error) { return 0, nil })
		survivor <- res{v, err, shared}
	}()
	for g.Waiters("k") < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-dropped
	close(release)

	got := <-survivor
	if got.err != nil || got.v != 9 || !got.shared {
		t.Errorf("surviving waiter = %+v, want (9, nil, shared)", got)
	}
	// The leader still saw a duplicate (the survivor), so shared is true.
	if l := <-leader; l.err != nil || !l.shared {
		t.Errorf("leader = %+v, want shared result", l)
	}
}

func TestGetOrFill(t *testing.T) {
	m := NewMemory[string](4)
	g := NewGroup[string]()
	ctx := context.Background()
	var fills int
	fill := func() (string, error) {
		fills++
		return "value", nil
	}
	v, hit, err := GetOrFill(ctx, m, g, "k", fill)
	if err != nil || hit || v != "value" {
		t.Errorf("first GetOrFill = (%q, %v, %v)", v, hit, err)
	}
	v, hit, err = GetOrFill(ctx, m, g, "k", fill)
	if err != nil || !hit || v != "value" {
		t.Errorf("second GetOrFill = (%q, %v, %v), want cache hit", v, hit, err)
	}
	if fills != 1 {
		t.Errorf("fill called %d times, want 1", fills)
	}
	// Exactly one lookup per call: 1 miss (first) + 1 hit (second).
	if s := m.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestFillIsStatsNeutral(t *testing.T) {
	m := NewMemory[string](4)
	g := NewGroup[string]()
	v, err := Fill(context.Background(), m, g, "k", func() (string, error) { return "value", nil })
	if err != nil || v != "value" {
		t.Errorf("Fill = (%q, %v)", v, err)
	}
	// Fill's in-flight re-check is a hidden peek: callers that probed the
	// cache themselves must not have misses double-counted.
	if s := m.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("stats after Fill = %+v, want 0 hits / 0 misses", s)
	}
	if v, err := m.Get("k"); err != nil || v != "value" {
		t.Errorf("Get after Fill = (%q, %v), want cached value", v, err)
	}
}

func TestGetOrFillErrorNotCached(t *testing.T) {
	m := NewMemory[string](4)
	g := NewGroup[string]()
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := GetOrFill(ctx, m, g, "k", func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Errorf("error = %v, want boom", err)
	}
	// Error results must not be cached; next call should retry the fill.
	v, hit, err := GetOrFill(ctx, m, g, "k", func() (string, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Errorf("retry = (%q, %v, %v)", v, hit, err)
	}
}

func TestGetOrFillConcurrentSingleFill(t *testing.T) {
	m := NewMemory[int](16)
	g := NewGroup[int]()
	ctx := context.Background()
	var mu sync.Mutex
	fills := 0
	const callers = 20
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := GetOrFill(ctx, m, g, "hot", func() (int, error) {
				mu.Lock()
				fills++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return 9, nil
			})
			if err != nil || v != 9 {
				t.Errorf("GetOrFill = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if fills != 1 {
		t.Errorf("fill executed %d times, want 1 (single-flight)", fills)
	}
	// Each of the 20 callers probed once and missed (the stampede raced
	// the single fill); none of the in-flight re-checks may add a second
	// miss for the same logical lookup, so hit ratio stays exact.
	s := m.Stats()
	if s.Hits+s.Misses != callers {
		t.Errorf("recorded %d lookups for %d callers: %+v", s.Hits+s.Misses, callers, s)
	}
}

// GetOrFill with a cancelled duplicate: the waiter unblocks with ctx.Err()
// while the leader's fill still lands in the cache.
func TestGetOrFillContextCancelledWaiter(t *testing.T) {
	m := NewMemory[int](16)
	g := NewGroup[int]()
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := GetOrFill(context.Background(), m, g, "k", func() (int, error) {
			<-release
			return 5, nil
		})
		if err != nil || v != 5 {
			t.Errorf("leader GetOrFill = (%d, %v)", v, err)
		}
	}()
	for g.Waiters("k") == -1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := GetOrFill(ctx, m, g, "k", func() (int, error) { return 0, nil })
		errc <- err
	}()
	for g.Waiters("k") < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled GetOrFill error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled GetOrFill still blocked")
	}
	close(release)
	<-leaderDone
	if v, err := m.Get("k"); err != nil || v != 5 {
		t.Errorf("cache after leader fill = (%d, %v), want (5, nil)", v, err)
	}
}

// Fill and GetOrFill accept any Store implementation; run the single-flight
// path against the sharded cache too.
func TestGetOrFillSharded(t *testing.T) {
	s := NewSharded[int](64, WithShards(8))
	defer s.Close()
	g := NewGroup[int]()
	ctx := context.Background()
	fills := 0
	for i := 0; i < 2; i++ {
		v, hit, err := GetOrFill(ctx, s, g, "k", func() (int, error) {
			fills++
			return 3, nil
		})
		if err != nil || v != 3 || hit != (i == 1) {
			t.Errorf("call %d = (%d, %v, %v)", i, v, hit, err)
		}
	}
	if fills != 1 {
		t.Errorf("fills = %d, want 1", fills)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Name  string `json:"name"`
		Score int    `json:"score"`
	}
	in := payload{Name: "svc", Score: 42}
	if err := d.Set("key1", in, 0); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Get("key1", &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestDiskMissAndDelete(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := d.Get("missing", &out); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	if err := d.Delete("missing"); err != nil {
		t.Errorf("Delete missing = %v, want nil", err)
	}
	if err := d.Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := d.Get("k", &out); !errors.Is(err, ErrNotFound) {
		t.Error("entry survived Delete")
	}
}

func TestDiskTTL(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	d, err := NewDisk(t.TempDir(), v)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set("k", 1, time.Minute); err != nil {
		t.Fatal(err)
	}
	var out int
	if err := d.Get("k", &out); err != nil {
		t.Fatalf("fresh entry: %v", err)
	}
	v.Advance(2 * time.Minute)
	if err := d.Get("k", &out); !errors.Is(err, ErrNotFound) {
		t.Error("entry should have expired")
	}
}

func TestDiskLenClear(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Set(fmt.Sprintf("k%d", i), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := d.Len()
	if err != nil || n != 5 {
		t.Errorf("Len = (%d, %v), want 5", n, err)
	}
	if err := d.Clear(); err != nil {
		t.Fatal(err)
	}
	n, _ = d.Len()
	if n != 0 {
		t.Errorf("Len after Clear = %d", n)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Set("persistent", "hello", 0); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := d2.Get("persistent", &out); err != nil || out != "hello" {
		t.Errorf("reopened Get = (%q, %v)", out, err)
	}
}

func TestDiskUnencodableValue(t *testing.T) {
	d, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set("k", make(chan int), 0); err == nil {
		t.Error("encoding a channel should fail")
	}
}

// Concurrent Sets of the same key must never interleave on a shared temp
// file: every Get must decode a complete entry written by exactly one of
// the writers. Run under `make race`.
func TestDiskConcurrentSetSameKey(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Writer int    `json:"writer"`
		Body   string `json:"body"`
	}
	const writers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := fmt.Sprintf("writer-%d-%s", w, string(make([]byte, 4096)))
			for r := 0; r < rounds; r++ {
				if err := d.Set("contested", payload{Writer: w, Body: body}, 0); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				var got payload
				switch err := d.Get("contested", &got); {
				case errors.Is(err, ErrNotFound):
					// A concurrent rename can briefly race the read on
					// some filesystems; absence is fine, torn data is not.
				case err != nil:
					t.Errorf("Get decoded a torn entry: %v", err)
					return
				default:
					if got.Writer < 0 || got.Writer >= writers || len(got.Body) != len(body) {
						t.Errorf("Get = writer %d with %d-byte body, want a complete entry", got.Writer, len(got.Body))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// No temp files may leak once every writer has finished.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}
