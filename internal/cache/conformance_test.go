package cache

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

// The conformance suite runs the full Memory behavioural contract against
// every Store implementation. strictLRU marks implementations whose
// eviction and Keys order follow a single global LRU list; a multi-shard
// cache tracks recency per shard, so those subtests apply only to the
// single-list implementations.
type cacheImpl struct {
	name      string
	strictLRU bool
	mk        func(capacity int, opts ...Option) Store[int]
}

func cacheImpls() []cacheImpl {
	return []cacheImpl{
		{"memory", true, func(c int, o ...Option) Store[int] {
			return NewMemory[int](c, o...)
		}},
		{"sharded-1", true, func(c int, o ...Option) Store[int] {
			return NewSharded[int](c, append(o, WithShards(1))...)
		}},
		{"sharded-8", false, func(c int, o ...Option) Store[int] {
			return NewSharded[int](c, append(o, WithShards(8))...)
		}},
	}
}

func forEachImpl(t *testing.T, f func(t *testing.T, impl cacheImpl)) {
	for _, impl := range cacheImpls() {
		t.Run(impl.name, func(t *testing.T) { f(t, impl) })
	}
}

func TestStoreGetSet(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		m := impl.mk(8)
		defer m.Close()
		if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get on empty = %v, want ErrNotFound", err)
		}
		m.Set("a", 1)
		v, err := m.Get("a")
		if err != nil || v != 1 {
			t.Errorf("Get = (%d, %v), want (1, nil)", v, err)
		}
		m.Set("a", 2) // update in place
		v, _ = m.Get("a")
		if v != 2 {
			t.Errorf("updated Get = %d, want 2", v)
		}
		if m.Len() != 1 {
			t.Errorf("Len = %d, want 1", m.Len())
		}
	})
}

func TestStoreLRUEviction(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		if !impl.strictLRU {
			t.Skip("global LRU order applies only to single-list caches")
		}
		m := impl.mk(3)
		defer m.Close()
		m.Set("a", 1)
		m.Set("b", 2)
		m.Set("c", 3)
		// Touch "a" so "b" becomes the eviction candidate.
		if _, err := m.Get("a"); err != nil {
			t.Fatal(err)
		}
		m.Set("d", 4)
		if _, err := m.Get("b"); !errors.Is(err, ErrNotFound) {
			t.Error("b should have been evicted")
		}
		for _, k := range []string{"a", "c", "d"} {
			if _, err := m.Get(k); err != nil {
				t.Errorf("%s should survive: %v", k, err)
			}
		}
		if s := m.Stats(); s.Evictions != 1 {
			t.Errorf("Evictions = %d, want 1", s.Evictions)
		}
	})
}

func TestStoreTTLExpiry(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		v := clock.NewVirtual(time.Unix(0, 0))
		m := impl.mk(10, WithTTL(time.Minute), WithClock(v))
		defer m.Close()
		m.Set("k", 7)
		if _, err := m.Get("k"); err != nil {
			t.Fatalf("fresh entry: %v", err)
		}
		v.Advance(59 * time.Second)
		if _, err := m.Get("k"); err != nil {
			t.Errorf("entry expired early: %v", err)
		}
		v.Advance(2 * time.Second)
		if _, err := m.Get("k"); !errors.Is(err, ErrNotFound) {
			t.Error("entry should have expired")
		}
		if s := m.Stats(); s.Expired != 1 {
			t.Errorf("Expired = %d, want 1", s.Expired)
		}
	})
}

func TestStoreSetTTLOverride(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		v := clock.NewVirtual(time.Unix(0, 0))
		m := impl.mk(10, WithTTL(time.Second), WithClock(v))
		defer m.Close()
		m.SetTTL("forever", 1, 0) // explicit no-expiry overrides default
		v.Advance(time.Hour)
		if _, err := m.Get("forever"); err != nil {
			t.Errorf("no-TTL entry expired: %v", err)
		}
	})
}

func TestStoreDeleteContains(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		m := impl.mk(8)
		defer m.Close()
		m.Set("a", 1)
		if !m.Contains("a") {
			t.Error("Contains(a) = false")
		}
		if !m.Delete("a") {
			t.Error("Delete(a) = false, want true")
		}
		if m.Delete("a") {
			t.Error("second Delete(a) = true, want false")
		}
		if m.Contains("a") {
			t.Error("Contains after Delete = true")
		}
	})
}

// Contains must lazily reclaim an expired entry — counting it in
// Stats.Expired — instead of leaving it pinning a slot until capacity
// eviction happens to reach it.
func TestStoreContainsReclaimsExpired(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		v := clock.NewVirtual(time.Unix(0, 0))
		m := impl.mk(8, WithClock(v))
		defer m.Close()
		m.SetTTL("a", 1, time.Second)
		v.Advance(2 * time.Second)
		if m.Contains("a") {
			t.Error("Contains should be false for expired entry")
		}
		if m.Len() != 0 {
			t.Errorf("Len after Contains on expired = %d, want 0 (lazy reclaim)", m.Len())
		}
		s := m.Stats()
		if s.Expired != 1 {
			t.Errorf("Expired = %d, want 1", s.Expired)
		}
		if s.Hits != 0 || s.Misses != 0 {
			t.Errorf("Contains must not touch hit/miss counters: %+v", s)
		}
	})
}

func TestStorePurge(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		v := clock.NewVirtual(time.Unix(0, 0))
		m := impl.mk(10, WithClock(v))
		defer m.Close()
		m.SetTTL("a", 1, time.Second)
		m.SetTTL("b", 2, time.Hour)
		m.SetTTL("c", 3, 0)
		v.Advance(time.Minute)
		if removed := m.Purge(); removed != 1 {
			t.Errorf("Purge removed %d, want 1", removed)
		}
		if m.Len() != 2 {
			t.Errorf("Len after Purge = %d, want 2", m.Len())
		}
	})
}

func TestStoreKeysMRUOrder(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		if !impl.strictLRU {
			t.Skip("global MRU order applies only to single-list caches")
		}
		m := impl.mk(8)
		defer m.Close()
		m.Set("a", 1)
		m.Set("b", 2)
		m.Set("c", 3)
		if _, err := m.Get("a"); err != nil {
			t.Fatal(err)
		}
		keys := m.Keys()
		if len(keys) != 3 || keys[0] != "a" {
			t.Errorf("Keys = %v, want a first (MRU)", keys)
		}
	})
}

func TestStoreKeysLiveOnly(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		v := clock.NewVirtual(time.Unix(0, 0))
		m := impl.mk(8, WithClock(v))
		defer m.Close()
		m.SetTTL("dead", 1, time.Second)
		m.SetTTL("live", 2, time.Hour)
		v.Advance(time.Minute)
		keys := m.Keys()
		if len(keys) != 1 || keys[0] != "live" {
			t.Errorf("Keys = %v, want [live]", keys)
		}
	})
}

func TestStoreClear(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		m := impl.mk(8)
		defer m.Close()
		m.Set("a", 1)
		m.Set("b", 2)
		m.Clear()
		if m.Len() != 0 {
			t.Errorf("Len after Clear = %d", m.Len())
		}
		if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
			t.Error("entry survived Clear")
		}
	})
}

func TestStoreCapacityClamped(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		m := impl.mk(0)
		defer m.Close()
		m.Set("a", 1)
		m.Set("b", 2)
		if m.Len() != 1 {
			t.Errorf("Len = %d, want 1 (capacity clamped)", m.Len())
		}
	})
}

func TestStoreHitRatio(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		m := impl.mk(8)
		defer m.Close()
		m.Set("a", 1)
		if _, err := m.Get("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Get("missing"); err == nil {
			t.Fatal("expected miss")
		}
		if r := m.Stats().HitRatio(); r != 0.5 {
			t.Errorf("HitRatio = %v, want 0.5", r)
		}
	})
}

func TestStoreConcurrent(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		m := impl.mk(128)
		defer m.Close()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					k := strconv.Itoa(i % 200)
					m.Set(k, i)
					if _, err := m.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("Get error: %v", err)
					}
				}
			}()
		}
		wg.Wait()
		if m.Len() > 128 {
			t.Errorf("Len = %d exceeds capacity", m.Len())
		}
	})
}

func TestStoreNeverExceedsCapacityProperty(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		// Property: after any sequence of Sets, Len <= capacity.
		f := func(keys []uint8, capRaw uint8) bool {
			capacity := int(capRaw%16) + 1
			m := impl.mk(capacity)
			defer m.Close()
			for i, k := range keys {
				m.Set(strconv.Itoa(int(k)), i)
				if m.Len() > capacity {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestStoreLastWriteWinsProperty(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		// Property: a Get immediately after Set returns the Set value.
		f := func(key uint8, vals []int) bool {
			m := impl.mk(8)
			defer m.Close()
			k := strconv.Itoa(int(key))
			for _, v := range vals {
				m.Set(k, v)
				got, err := m.Get(k)
				if err != nil || got != v {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// Len and Stats.Size must agree at any instant, and with a janitor
// running both converge to the live count after entries expire.
func TestStoreLenMatchesStatsSizeWithJanitor(t *testing.T) {
	forEachImpl(t, func(t *testing.T, impl cacheImpl) {
		v := clock.NewVirtual(time.Unix(0, 0))
		m := impl.mk(16, WithClock(v), WithJanitor(time.Second))
		defer m.Close()
		m.SetTTL("short", 1, time.Second)
		m.SetTTL("long", 2, time.Hour)
		if l, s := m.Len(), m.Stats().Size; l != 2 || s != 2 {
			t.Fatalf("Len, Size = %d, %d; want 2, 2", l, s)
		}
		// Wait for the sweeper goroutine to park on the virtual clock, so
		// the Advance below is guaranteed to wake it.
		for v.Pending() == 0 {
			time.Sleep(time.Millisecond)
		}
		// Advance past the TTL: the janitor wakes and reclaims the
		// expired entry; poll for its purge to land.
		v.Advance(2 * time.Second)
		deadline := time.Now().Add(2 * time.Second)
		for m.Len() != 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if l, s := m.Len(), m.Stats().Size; l != 1 || s != 1 {
			t.Errorf("after janitor sweep Len, Size = %d, %d; want 1, 1", l, s)
		}
		if got := m.Stats().Expired; got != 1 {
			t.Errorf("Expired = %d, want 1", got)
		}
	})
}

// Per-shard capacity splitting: the shard capacities sum to the total, so
// no matter how keys distribute, the cache never exceeds its configured
// capacity and every shard respects its own slice.
func TestShardedEvictionDistribution(t *testing.T) {
	const capacity, shards = 64, 8
	s := NewSharded[int](capacity, WithShards(shards))
	defer s.Close()
	if got := s.ShardCount(); got != shards {
		t.Fatalf("ShardCount = %d, want %d", got, shards)
	}
	for i := 0; i < 50*capacity; i++ {
		s.Set(fmt.Sprintf("key-%d", i), i)
	}
	if s.Len() > capacity {
		t.Errorf("Len = %d exceeds total capacity %d", s.Len(), capacity)
	}
	per := s.ShardStats()
	total, evictions := 0, uint64(0)
	for i, ss := range per {
		if ss.Size > capacity/shards {
			t.Errorf("shard %d holds %d entries, per-shard capacity is %d", i, ss.Size, capacity/shards)
		}
		total += ss.Size
		evictions += ss.Evictions
	}
	if total != s.Len() {
		t.Errorf("sum of shard sizes = %d, Len = %d", total, s.Len())
	}
	if evictions == 0 {
		t.Error("expected evictions after overfilling every shard")
	}
	if merged := s.Stats(); merged.Evictions != evictions {
		t.Errorf("merged Evictions = %d, shard sum = %d", merged.Evictions, evictions)
	}
}

// An uneven capacity spreads the remainder over the first shards and
// still sums exactly to the configured total.
func TestShardedUnevenCapacitySplit(t *testing.T) {
	s := NewSharded[int](10, WithShards(4))
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Set(strconv.Itoa(i), i)
	}
	if s.Len() > 10 {
		t.Errorf("Len = %d exceeds capacity 10", s.Len())
	}
}

// A shard count above the capacity is halved until every shard can hold
// at least one entry.
func TestShardedShardCountClamped(t *testing.T) {
	s := NewSharded[int](4, WithShards(64))
	defer s.Close()
	if got := s.ShardCount(); got > 4 {
		t.Errorf("ShardCount = %d, want <= capacity 4", got)
	}
	if got := NewSharded[int](1).ShardCount(); got != 1 {
		t.Errorf("capacity-1 ShardCount = %d, want 1", got)
	}
}
