package cache

import (
	"hash/maphash"
	"math/bits"
	"runtime"
	"time"
)

// Sharded is a bounded LRU cache split across N power-of-two shards, each
// an independent Memory with its own mutex, LRU list, and statistics. Keys
// map to shards by a seeded constant-cost hash over a sample of the key
// (see shard), so concurrent lookups for different keys contend on
// different locks — the memcached-style
// answer to the single-mutex hit path serializing every cache hit in the
// process (PAPERS.md: Nishtala et al., "Scaling Memcache at Facebook").
//
// The total capacity is divided across the shards (the sum of shard
// capacities never exceeds the configured capacity), so Len() ≤ capacity
// always holds. Eviction is per shard: a hot shard evicts its own LRU
// tail even while other shards have room, which is the usual sharding
// trade-off against a global LRU order.
//
// Sharded implements the same Get/Set/SetTTL/Delete/Contains/Len/Clear/
// Purge/Keys/Stats surface as Memory (the Store interface) and is safe
// for concurrent use.
type Sharded[V any] struct {
	shards []Memory[V] // laid out contiguously; one less pointer chase per op
	shift  uint        // 64 - log2(len(shards)): the multiply's top bits pick the shard
	seed   uint64
	jan    *janitor
}

var _ Store[int] = (*Sharded[int])(nil)

// defaultShards picks a power-of-two shard count sized to the machine's
// parallelism: contention scales with runnable goroutines, which scale
// with GOMAXPROCS. The floor of 8 keeps small machines from degenerating
// to a single mutex.
func defaultShards() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewSharded returns a sharded LRU cache holding at most capacity entries
// in total. capacity must be >= 1; smaller values are clamped to 1. The
// shard count (WithShards, or a GOMAXPROCS-derived default) is rounded up
// to a power of two and then halved until every shard holds at least one
// entry. A WithJanitor interval starts one background sweeper covering
// all shards; stop it with Close.
func NewSharded[V any](capacity int, opts ...Option) *Sharded[V] {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	if capacity < 1 {
		capacity = 1
	}
	n := o.shards
	if n <= 0 {
		n = defaultShards()
	}
	n = ceilPow2(n)
	for n > 1 && n > capacity {
		n >>= 1
	}
	s := &Sharded[V]{
		shards: make([]Memory[V], n),
		shift:  uint(64 - bits.Len(uint(n-1))),
		seed:   new(maphash.Hash).Sum64(), // a per-cache random 64-bit seed
	}
	// Distribute capacity as evenly as possible; the first capacity%n
	// shards take the remainder so the sum is exactly capacity.
	base, rem := capacity/n, capacity%n
	for i := range s.shards {
		c := base
		if i < rem {
			c++
		}
		initMemory(&s.shards[i], c, o)
	}
	if o.janitor > 0 {
		s.jan = newJanitor(o.janitor, o.clk, func() { s.Purge() })
	}
	return s
}

// shard returns the shard owning key. Shard selection must stay a small
// constant cost no matter how long the key is — cache keys here are
// typically a service prefix plus a sha256 hex digest (~74 bytes), and
// hashing all of it (byte-wise FNV-1a, or even maphash.String) adds a
// measurable fraction to a ~35ns hit path that already pays the map's own
// full-key hash. Spreading across shards only needs a few well-mixed
// bits, so shardHash samples the head and tail instead of the whole key.
func (s *Sharded[V]) shard(key string) *Memory[V] {
	n := len(key)
	if n < 8 {
		return s.shardShort(key)
	}
	// Sample the key's first 8 bytes, last 8 bytes, and length; fold in
	// the seed; and let one Fibonacci multiply spread the result, taking
	// the product's top bits (the well-mixed ones) as the shard index.
	// The two le64 reads compile to single 8-byte loads, so the cost is
	// flat in key length. Keys that agree on head, tail, AND length land
	// on one shard — acceptable because the SDK's cache keys end in a
	// request digest, and a skewed shard only degrades concurrency.
	h := (s.seed ^ le64(key) ^ bits.RotateLeft64(le64(key[n-8:]), 32) ^ uint64(n)) * 0x9e3779b97f4a7c15
	return &s.shards[h>>s.shift]
}

// shardShort covers keys under 8 bytes, kept out of shard so the common
// path stays within the inlining budget: FNV-1a over the whole key, with
// a final Fibonacci multiply so the top bits are usable as an index.
func (s *Sharded[V]) shardShort(key string) *Memory[V] {
	h := s.seed ^ 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211 // FNV-1a prime
	}
	return &s.shards[(h*0x9e3779b97f4a7c15)>>s.shift]
}

// le64 reads the first 8 bytes of s as a little-endian uint64; the
// compiler combines the byte reads into one load.
func le64(s string) uint64 {
	_ = s[7]
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

// ShardCount reports how many shards the cache was built with.
func (s *Sharded[V]) ShardCount() int { return len(s.shards) }

// Get returns the cached value for key. It returns ErrNotFound if the key
// is absent or its entry has expired; expired entries are removed.
func (s *Sharded[V]) Get(key string) (V, error) { return s.shard(key).Get(key) }

// peek implements Store: a lookup with no LRU or stats side effects.
func (s *Sharded[V]) peek(key string) (V, bool) { return s.shard(key).peek(key) }

// Set stores value under key with the cache's default TTL.
func (s *Sharded[V]) Set(key string, value V) { s.shard(key).Set(key, value) }

// SetTTL stores value under key with an explicit TTL; ttl <= 0 means the
// entry never expires.
func (s *Sharded[V]) SetTTL(key string, value V, ttl time.Duration) {
	s.shard(key).SetTTL(key, value, ttl)
}

// Delete removes key if present and reports whether it was found.
func (s *Sharded[V]) Delete(key string) bool { return s.shard(key).Delete(key) }

// Contains reports whether key is present and live, lazily reclaiming an
// expired entry (see Memory.Contains).
func (s *Sharded[V]) Contains(key string) bool { return s.shard(key).Contains(key) }

// Len returns the number of entries across all shards, including expired
// ones not yet collected.
func (s *Sharded[V]) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].Len()
	}
	return n
}

// Clear removes every entry from every shard.
func (s *Sharded[V]) Clear() {
	for i := range s.shards {
		s.shards[i].Clear()
	}
}

// Purge removes all expired entries across shards and returns how many
// were removed.
func (s *Sharded[V]) Purge() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].Purge()
	}
	return n
}

// Keys returns the live keys, most-to-least recently used within each
// shard, concatenated in shard order. Unlike Memory.Keys, the combined
// order is not a global MRU ranking — recency is tracked per shard.
func (s *Sharded[V]) Keys() []string {
	var keys []string
	for i := range s.shards {
		keys = append(keys, s.shards[i].Keys()...)
	}
	return keys
}

// Stats returns the activity counters summed across shards. Size is the
// total entry count.
func (s *Sharded[V]) Stats() Stats {
	var total Stats
	for i := range s.shards {
		total.add(s.shards[i].Stats())
	}
	return total
}

// ShardStats returns each shard's counters in shard order, for per-shard
// gauges (/metrics) and balance diagnostics.
func (s *Sharded[V]) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].Stats()
	}
	return out
}

// Close stops the janitor, if one was configured with WithJanitor. It is
// idempotent and safe to call on a cache without a janitor.
func (s *Sharded[V]) Close() { s.jan.stop() }
