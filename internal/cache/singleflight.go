package cache

import "sync"

// Group de-duplicates concurrent calls with the same key: while one call is
// in flight, later callers for the same key wait for and share its result
// instead of issuing redundant service invocations. This complements the
// cache on cold keys under concurrency.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

type call[V any] struct {
	done chan struct{} // closed when the call completes
	val  V
	err  error
	dups int
}

// NewGroup returns an empty Group.
func NewGroup[V any]() *Group[V] {
	return &Group[V]{calls: make(map[string]*call[V])}
}

// Do invokes fn once per key at a time; concurrent duplicate callers block
// and receive the same result. shared reports whether the result was
// produced by another caller's invocation.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, c.dups > 0
}

// Waiters reports how many duplicate callers are currently waiting on the
// in-flight call for key, or -1 if no call is in flight. It exists for
// observability and test synchronization.
func (g *Group[V]) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return -1
	}
	return c.dups
}

// GetOrFill returns the cached value for key, or — on a miss — invokes fill
// (de-duplicated across concurrent callers) and caches its result. hit
// reports whether the value came from the cache.
func GetOrFill[V any](m *Memory[V], g *Group[V], key string, fill func() (V, error)) (v V, hit bool, err error) {
	if v, err := m.Get(key); err == nil {
		return v, true, nil
	}
	v, err = Fill(m, g, key, fill)
	return v, false, err
}

// Fill invokes fill for key — de-duplicated across concurrent callers — and
// caches its result. It is the miss half of GetOrFill, for callers that have
// already probed the cache themselves: it never records a cache miss of its
// own, only the re-check inside the flight that lets an earlier duplicate's
// result win.
func Fill[V any](m *Memory[V], g *Group[V], key string, fill func() (V, error)) (V, error) {
	v, err, _ := g.Do(key, func() (V, error) {
		// Re-check inside the flight: an earlier duplicate may have
		// already filled the cache.
		if v, err := m.Get(key); err == nil {
			return v, nil
		}
		v, err := fill()
		if err != nil {
			var zero V
			return zero, err
		}
		m.Set(key, v)
		return v, nil
	})
	return v, err
}
