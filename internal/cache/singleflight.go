package cache

import (
	"context"
	"sync"
)

// Group de-duplicates concurrent calls with the same key: while one call is
// in flight, later callers for the same key wait for and share its result
// instead of issuing redundant service invocations. This complements the
// cache on cold keys under concurrency.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

type call[V any] struct {
	done chan struct{} // closed when the call completes
	val  V
	err  error
	dups int
}

// NewGroup returns an empty Group.
func NewGroup[V any]() *Group[V] {
	return &Group[V]{calls: make(map[string]*call[V])}
}

// Do invokes fn once per key at a time; concurrent duplicate callers block
// and receive the same result. shared reports whether the result was
// produced by another caller's invocation. Waiters block until the leader
// finishes; use DoCtx when a waiter must be able to give up early.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	return g.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with a context governing the wait: a duplicate caller whose
// ctx is cancelled stops waiting and returns ctx.Err() immediately —
// mirroring golang.org/x/sync/singleflight's Forget/cancel semantics —
// instead of waiting out the leader. The cancelled waiter is removed from
// the flight's duplicate accounting, so Waiters stays accurate.
//
// The leader is not interrupted: fn runs to completion regardless of ctx,
// and its result still serves every waiter that stayed. fn should observe
// the leader's own context internally if it needs cancellation.
func (g *Group[V]) DoCtx(ctx context.Context, key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			g.mu.Lock()
			c.dups--
			g.mu.Unlock()
			var zero V
			return zero, ctx.Err(), false
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	// Read dups under the lock: a cancelled waiter may be decrementing it
	// concurrently right up until the key leaves the map.
	g.mu.Lock()
	delete(g.calls, key)
	shared = c.dups > 0
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, shared
}

// Waiters reports how many duplicate callers are currently waiting on the
// in-flight call for key, or -1 if no call is in flight. It exists for
// observability and test synchronization.
func (g *Group[V]) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return -1
	}
	return c.dups
}

// GetOrFill returns the cached value for key, or — on a miss — invokes fill
// (de-duplicated across concurrent callers) and caches its result. hit
// reports whether the value came from the cache. ctx bounds only the wait
// for another caller's in-flight fill (see DoCtx); a caller that becomes
// the leader runs fill to completion.
//
// Exactly one cache lookup is recorded per call — the initial probe — so
// Stats.HitRatio stays meaningful under cold concurrent load.
func GetOrFill[V any](ctx context.Context, m Store[V], g *Group[V], key string, fill func() (V, error)) (v V, hit bool, err error) {
	if v, err := m.Get(key); err == nil {
		return v, true, nil
	}
	v, err = Fill(ctx, m, g, key, fill)
	return v, false, err
}

// Fill invokes fill for key — de-duplicated across concurrent callers — and
// caches its result. It is the miss half of GetOrFill, for callers that
// have already probed the cache themselves. Fill is stats-neutral: the
// in-flight re-check that lets an earlier duplicate's result win uses a
// hidden peek, so the caller's probe remains the only recorded lookup and
// misses are not double-counted. ctx bounds the wait for an in-flight
// leader, as in DoCtx.
func Fill[V any](ctx context.Context, m Store[V], g *Group[V], key string, fill func() (V, error)) (V, error) {
	v, err, _ := g.DoCtx(ctx, key, func() (V, error) {
		// Re-check inside the flight: an earlier duplicate may have
		// already filled the cache. peek keeps the re-check out of the
		// hit/miss counters — the caller's probe already recorded this
		// logical lookup.
		if v, ok := m.peek(key); ok {
			return v, nil
		}
		v, err := fill()
		if err != nil {
			var zero V
			return zero, err
		}
		m.Set(key, v)
		return v, nil
	})
	return v, err
}
