// Package cache implements the rich SDK's caching substrate (paper §2):
// responses from remote services are cached locally to avoid redundant
// service calls, cut latency, and keep applications running when a service
// is unreachable. It provides a bounded in-memory LRU cache with per-entry
// TTL (Memory), a sharded variant for concurrent hit-path scalability
// (Sharded), request de-duplication (single-flight), and a persistent disk
// cache.
package cache

import (
	"container/list"
	"errors"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/clock"
)

// ErrNotFound is returned by Get when the key is absent or expired.
var ErrNotFound = errors.New("cache: not found")

// Stats counts cache activity. Hits, Misses, Evictions, and Expired are
// monotonic activity counters: Delete and Clear remove entries without
// rewinding them. Size is computed live at Stats() time, so it always
// reflects the current entry count (expired-but-uncollected entries
// included; see Len).
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Expired   uint64 // expired entries reclaimed by Get/Contains/Purge
	Size      int    // current number of entries, expired ones included
}

// HitRatio returns hits / (hits + misses), or 0 with no lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// add accumulates o into s, summing counters. Size adds too, so merged
// stats across shards report the total entry count.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Expired += o.Expired
	s.Size += o.Size
}

// Store is the surface shared by the cache implementations (Memory and
// Sharded), so call sites — core.CacheStage, Fill, GetOrFill, the
// conformance suite — can take either. The unexported peek keeps the
// interface closed to this package: both implementations must agree on
// stats-neutral probing for single-flight re-checks.
type Store[V any] interface {
	Get(key string) (V, error)
	Set(key string, value V)
	SetTTL(key string, value V, ttl time.Duration)
	Delete(key string) bool
	Contains(key string) bool
	Len() int
	Clear()
	Purge() int
	Keys() []string
	Stats() Stats
	// Close stops any background janitor. A store without one treats
	// Close as a no-op; Close is idempotent.
	Close()

	// peek returns the live value for key without touching LRU order or
	// any statistic. It is the stats-neutral lookup Fill uses for its
	// in-flight re-check, so one logical lookup records exactly one
	// hit or miss (the caller's probe).
	peek(key string) (V, bool)
}

// options collects the knobs shared by Memory and Sharded. Options are
// deliberately non-generic: the same WithTTL value configures a cache of
// any value type.
type options struct {
	ttl     time.Duration
	clk     clock.Clock
	jitter  float64       // fraction of TTL randomized per entry
	janitor time.Duration // background purge interval; 0 disables
	shards  int           // Sharded only; Memory ignores it
}

func defaultOptions() options {
	return options{clk: clock.Real()}
}

// Option configures a Memory or Sharded cache.
type Option func(*options)

// WithTTL sets a default time-to-live applied to every Set.
func WithTTL(ttl time.Duration) Option {
	return func(o *options) { o.ttl = ttl }
}

// WithClock sets the clock used for expiry decisions and the janitor.
func WithClock(c clock.Clock) Option {
	return func(o *options) {
		if c != nil {
			o.clk = c
		}
	}
}

// WithTTLJitter spreads each entry's effective TTL uniformly over
// [ttl·(1-frac), ttl·(1+frac)], de-synchronizing the expiry of entries
// stored together so they do not stampede the backend when they all lapse
// at once. frac is clamped to [0, 1]; 0 disables jitter.
func WithTTLJitter(frac float64) Option {
	return func(o *options) {
		switch {
		case frac < 0:
			o.jitter = 0
		case frac > 1:
			o.jitter = 1
		default:
			o.jitter = frac
		}
	}
}

// WithJanitor runs a background goroutine that purges expired entries
// every interval on the cache's clock, so expired entries stop pinning
// memory until capacity eviction reaches them. Stop it with Close.
func WithJanitor(interval time.Duration) Option {
	return func(o *options) {
		if interval > 0 {
			o.janitor = interval
		}
	}
}

// WithShards sets a Sharded cache's shard count, rounded up to a power of
// two and capped so every shard holds at least one entry. Memory ignores
// it. 0 picks a default sized to the machine's parallelism.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// Memory is a bounded in-memory LRU cache with optional per-entry TTL. It
// is safe for concurrent use, but every operation serializes on one
// mutex; for read-heavy concurrent workloads prefer Sharded.
type Memory[V any] struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration // default TTL; 0 means entries never expire
	jitter   float64
	clk      clock.Clock
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	stats    Stats
	jan      *janitor
}

var _ Store[int] = (*Memory[int])(nil)

type entry[V any] struct {
	key     string
	value   V
	expires time.Time // zero means no expiry
}

// NewMemory returns an LRU cache holding at most capacity entries.
// capacity must be >= 1; smaller values are clamped to 1.
func NewMemory[V any](capacity int, opts ...Option) *Memory[V] {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	m := newMemory[V](capacity, o)
	if o.janitor > 0 {
		m.jan = newJanitor(o.janitor, o.clk, func() { m.Purge() })
	}
	return m
}

// newMemory builds the cache without starting a janitor; Sharded uses it
// for its shards so one janitor serves the whole cache.
func newMemory[V any](capacity int, o options) *Memory[V] {
	m := new(Memory[V])
	initMemory(m, capacity, o)
	return m
}

// initMemory initializes a zero Memory in place, so Sharded can lay its
// shards out in one contiguous slice without copying a constructed value
// (Memory holds a mutex; copying one would trip go vet's copylocks).
func initMemory[V any](m *Memory[V], capacity int, o options) {
	if capacity < 1 {
		capacity = 1
	}
	m.capacity = capacity
	m.ttl = o.ttl
	m.jitter = o.jitter
	m.clk = o.clk
	m.ll = list.New()
	m.items = make(map[string]*list.Element, capacity)
}

// Get returns the cached value for key. It returns ErrNotFound if the key
// is absent or its entry has expired; expired entries are removed.
func (m *Memory[V]) Get(key string) (V, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var zero V
	el, ok := m.items[key]
	if !ok {
		m.stats.Misses++
		return zero, ErrNotFound
	}
	en := el.Value.(*entry[V])
	if !en.expires.IsZero() && !m.clk.Now().Before(en.expires) {
		m.removeElement(el)
		m.stats.Expired++
		m.stats.Misses++
		return zero, ErrNotFound
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return en.value, nil
}

// peek implements Store: a lookup with no LRU or stats side effects.
func (m *Memory[V]) peek(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var zero V
	el, ok := m.items[key]
	if !ok {
		return zero, false
	}
	en := el.Value.(*entry[V])
	if !en.expires.IsZero() && !m.clk.Now().Before(en.expires) {
		return zero, false
	}
	return en.value, true
}

// Set stores value under key with the cache's default TTL.
func (m *Memory[V]) Set(key string, value V) {
	m.SetTTL(key, value, m.ttl)
}

// SetTTL stores value under key with an explicit TTL; ttl <= 0 means the
// entry never expires. With jitter configured, the effective TTL is
// randomized around ttl (see WithTTLJitter).
func (m *Memory[V]) SetTTL(key string, value V, ttl time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var expires time.Time
	if ttl > 0 {
		if m.jitter > 0 {
			// Uniform over [1-j, 1+j); rand/v2's global state is cheap
			// enough for the write path.
			ttl = time.Duration(float64(ttl) * (1 + m.jitter*(2*rand.Float64()-1)))
			if ttl <= 0 {
				ttl = 1
			}
		}
		expires = m.clk.Now().Add(ttl)
	}
	if el, ok := m.items[key]; ok {
		en := el.Value.(*entry[V])
		en.value = value
		en.expires = expires
		m.ll.MoveToFront(el)
		return
	}
	el := m.ll.PushFront(&entry[V]{key: key, value: value, expires: expires})
	m.items[key] = el
	if m.ll.Len() > m.capacity {
		oldest := m.ll.Back()
		if oldest != nil {
			m.removeElement(oldest)
			m.stats.Evictions++
		}
	}
}

// Delete removes key if present and reports whether it was found (even if
// expired). It adjusts no activity counter — the counters are monotonic —
// but Stats.Size and Len shrink immediately.
func (m *Memory[V]) Delete(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return false
	}
	m.removeElement(el)
	return true
}

// Contains reports whether key is present and live, without affecting LRU
// order or hit/miss statistics. An expired entry found here is lazily
// reclaimed (counted in Stats.Expired) instead of pinning its slot until
// capacity eviction or a Purge reaches it.
func (m *Memory[V]) Contains(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return false
	}
	en := el.Value.(*entry[V])
	if !en.expires.IsZero() && !m.clk.Now().Before(en.expires) {
		m.removeElement(el)
		m.stats.Expired++
		return false
	}
	return true
}

// Len returns the number of entries currently held, including expired
// ones that no Get/Contains/Purge has collected yet. It equals
// Stats().Size at the same instant; with a janitor running, both drop to
// the live count within one sweep interval of entries expiring.
func (m *Memory[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Clear removes every entry. Activity counters are preserved (they are
// monotonic); Size drops to 0.
func (m *Memory[V]) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ll.Init()
	m.items = make(map[string]*list.Element, m.capacity)
}

// Purge removes all expired entries and returns how many were removed.
func (m *Memory[V]) Purge() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	var removed int
	for el := m.ll.Back(); el != nil; {
		prev := el.Prev()
		en := el.Value.(*entry[V])
		if !en.expires.IsZero() && !now.Before(en.expires) {
			m.removeElement(el)
			m.stats.Expired++
			removed++
		}
		el = prev
	}
	return removed
}

// Keys returns the live keys from most to least recently used.
func (m *Memory[V]) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	keys := make([]string, 0, m.ll.Len())
	for el := m.ll.Front(); el != nil; el = el.Next() {
		en := el.Value.(*entry[V])
		if en.expires.IsZero() || now.Before(en.expires) {
			keys = append(keys, en.key)
		}
	}
	return keys
}

// Stats returns a copy of the activity counters.
func (m *Memory[V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Size = m.ll.Len()
	return s
}

// Close stops the janitor, if one was configured with WithJanitor. It is
// idempotent and safe to call on a cache without a janitor.
func (m *Memory[V]) Close() { m.jan.stop() }

// removeElement must be called with the lock held.
func (m *Memory[V]) removeElement(el *list.Element) {
	m.ll.Remove(el)
	en := el.Value.(*entry[V])
	delete(m.items, en.key)
}

// janitor periodically purges expired entries on the cache's clock. A nil
// janitor is inert, so Close works uniformly whether or not one runs.
type janitor struct {
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

func newJanitor(interval time.Duration, clk clock.Clock, purge func()) *janitor {
	j := &janitor{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(j.done)
		for {
			select {
			case <-clk.After(interval):
				purge()
			case <-j.quit:
				return
			}
		}
	}()
	return j
}

// stop halts the sweep goroutine and waits for it to exit.
func (j *janitor) stop() {
	if j == nil {
		return
	}
	j.once.Do(func() { close(j.quit) })
	<-j.done
}
