// Package cache implements the rich SDK's caching substrate (paper §2):
// responses from remote services are cached locally to avoid redundant
// service calls, cut latency, and keep applications running when a service
// is unreachable. It provides a bounded in-memory LRU cache with per-entry
// TTL, request de-duplication (single-flight), and a persistent disk cache.
package cache

import (
	"container/list"
	"errors"
	"sync"
	"time"

	"repro/internal/clock"
)

// ErrNotFound is returned by Get when the key is absent or expired.
var ErrNotFound = errors.New("cache: not found")

// Stats counts cache activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Expired   uint64 // lookups that found only an expired entry
	Size      int    // current number of live entries
}

// HitRatio returns hits / (hits + misses), or 0 with no lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Memory is a bounded in-memory LRU cache with optional per-entry TTL. It
// is safe for concurrent use.
type Memory[V any] struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration // default TTL; 0 means entries never expire
	clk      clock.Clock
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	stats    Stats
}

type entry[V any] struct {
	key     string
	value   V
	expires time.Time // zero means no expiry
}

// MemOption configures a Memory cache.
type MemOption[V any] func(*Memory[V])

// WithTTL sets a default time-to-live applied to every Set.
func WithTTL[V any](ttl time.Duration) MemOption[V] {
	return func(m *Memory[V]) { m.ttl = ttl }
}

// WithClock sets the clock used for expiry decisions.
func WithClock[V any](c clock.Clock) MemOption[V] {
	return func(m *Memory[V]) { m.clk = c }
}

// NewMemory returns an LRU cache holding at most capacity entries.
// capacity must be >= 1; smaller values are clamped to 1.
func NewMemory[V any](capacity int, opts ...MemOption[V]) *Memory[V] {
	if capacity < 1 {
		capacity = 1
	}
	m := &Memory[V]{
		capacity: capacity,
		clk:      clock.Real(),
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Get returns the cached value for key. It returns ErrNotFound if the key
// is absent or its entry has expired; expired entries are removed.
func (m *Memory[V]) Get(key string) (V, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var zero V
	el, ok := m.items[key]
	if !ok {
		m.stats.Misses++
		return zero, ErrNotFound
	}
	en := el.Value.(*entry[V])
	if !en.expires.IsZero() && !m.clk.Now().Before(en.expires) {
		m.removeElement(el)
		m.stats.Expired++
		m.stats.Misses++
		return zero, ErrNotFound
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return en.value, nil
}

// Set stores value under key with the cache's default TTL.
func (m *Memory[V]) Set(key string, value V) {
	m.SetTTL(key, value, m.ttl)
}

// SetTTL stores value under key with an explicit TTL; ttl <= 0 means the
// entry never expires.
func (m *Memory[V]) SetTTL(key string, value V, ttl time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var expires time.Time
	if ttl > 0 {
		expires = m.clk.Now().Add(ttl)
	}
	if el, ok := m.items[key]; ok {
		en := el.Value.(*entry[V])
		en.value = value
		en.expires = expires
		m.ll.MoveToFront(el)
		return
	}
	el := m.ll.PushFront(&entry[V]{key: key, value: value, expires: expires})
	m.items[key] = el
	if m.ll.Len() > m.capacity {
		oldest := m.ll.Back()
		if oldest != nil {
			m.removeElement(oldest)
			m.stats.Evictions++
		}
	}
}

// Delete removes key if present and reports whether it was found (even if
// expired).
func (m *Memory[V]) Delete(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return false
	}
	m.removeElement(el)
	return true
}

// Contains reports whether key is present and live, without affecting LRU
// order or statistics.
func (m *Memory[V]) Contains(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return false
	}
	en := el.Value.(*entry[V])
	return en.expires.IsZero() || m.clk.Now().Before(en.expires)
}

// Len returns the number of entries, including not-yet-collected expired
// ones.
func (m *Memory[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Clear removes every entry.
func (m *Memory[V]) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ll.Init()
	m.items = make(map[string]*list.Element, m.capacity)
}

// Purge removes all expired entries and returns how many were removed.
func (m *Memory[V]) Purge() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	var removed int
	for el := m.ll.Back(); el != nil; {
		prev := el.Prev()
		en := el.Value.(*entry[V])
		if !en.expires.IsZero() && !now.Before(en.expires) {
			m.removeElement(el)
			m.stats.Expired++
			removed++
		}
		el = prev
	}
	return removed
}

// Keys returns the live keys from most to least recently used.
func (m *Memory[V]) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	keys := make([]string, 0, m.ll.Len())
	for el := m.ll.Front(); el != nil; el = el.Next() {
		en := el.Value.(*entry[V])
		if en.expires.IsZero() || now.Before(en.expires) {
			keys = append(keys, en.key)
		}
	}
	return keys
}

// Stats returns a copy of the activity counters.
func (m *Memory[V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Size = m.ll.Len()
	return s
}

// removeElement must be called with the lock held.
func (m *Memory[V]) removeElement(el *list.Element) {
	m.ll.Remove(el)
	en := el.Value.(*entry[V])
	delete(m.items, en.key)
}
