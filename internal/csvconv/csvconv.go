// Package csvconv implements the personalized knowledge base's format
// conversions (paper §3): CSV files into relational tables, relational rows
// into RDF statements (and back), RDF statements into CSV, and rows into
// key-value records. "The ability to convert data between different formats
// is a key property of our personalized knowledge base."
package csvconv

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/kvstore"
	"repro/internal/rdbms"
	"repro/internal/rdf"
)

// TableToStatements converts each table row into RDF statements: the
// subject is ns + the row's value in subjectCol, and every other column
// becomes one predicate with the cell value as a literal object. NULL cells
// produce no statement.
func TableToStatements(t *rdbms.Table, subjectCol, ns string) ([]rdf.Statement, error) {
	schema := t.Schema()
	si := schema.Index(subjectCol)
	if si < 0 {
		return nil, fmt.Errorf("csvconv: no subject column %q", subjectCol)
	}
	var out []rdf.Statement
	for _, row := range t.Rows() {
		if row[si].Null {
			continue
		}
		subject := rdf.NewIRI(ns + row[si].String())
		for ci, col := range schema {
			if ci == si || row[ci].Null {
				continue
			}
			out = append(out, rdf.Statement{
				S: subject,
				P: rdf.NewIRI(ns + col.Name),
				O: rdf.NewLiteral(row[ci].String()),
			})
		}
	}
	return out, nil
}

// StatementsToTable materializes statements as a three-column relational
// table (subject, predicate, object) — the paper's "a Jena statement can be
// added to a MySQL table".
func StatementsToTable(db *rdbms.DB, name string, stmts []rdf.Statement) (*rdbms.Table, error) {
	t, err := db.Create(name, rdbms.Schema{
		{Name: "subject", Type: rdbms.TypeText},
		{Name: "predicate", Type: rdbms.TypeText},
		{Name: "object", Type: rdbms.TypeText},
	})
	if err != nil {
		return nil, err
	}
	for _, s := range stmts {
		row := rdbms.Row{
			rdbms.TextV(s.S.Value),
			rdbms.TextV(s.P.Value),
			rdbms.TextV(s.O.Value),
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TableToStatementsBack converts a three-column (subject, predicate,
// object) table back into statements, inverting StatementsToTable. Objects
// are rebuilt as literals; subjects and predicates as IRIs.
func TableToStatementsBack(t *rdbms.Table) ([]rdf.Statement, error) {
	schema := t.Schema()
	si, pi, oi := schema.Index("subject"), schema.Index("predicate"), schema.Index("object")
	if si < 0 || pi < 0 || oi < 0 {
		return nil, fmt.Errorf("csvconv: table %s lacks subject/predicate/object columns", t.Name())
	}
	var out []rdf.Statement
	for _, row := range t.Rows() {
		out = append(out, rdf.Statement{
			S: rdf.NewIRI(row[si].String()),
			P: rdf.NewIRI(row[pi].String()),
			O: rdf.NewLiteral(row[oi].String()),
		})
	}
	return out, nil
}

// CSVToStatements reads CSV with a header row directly into statements,
// combining ImportCSV and TableToStatements without keeping the table.
func CSVToStatements(r io.Reader, subjectCol, ns string) ([]rdf.Statement, error) {
	db := rdbms.NewDB()
	t, err := db.ImportCSV("tmp", r)
	if err != nil {
		return nil, err
	}
	return TableToStatements(t, subjectCol, ns)
}

// StatementsToCSV writes statements as subject,predicate,object CSV.
func StatementsToCSV(w io.Writer, stmts []rdf.Statement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"subject", "predicate", "object"}); err != nil {
		return fmt.Errorf("csvconv: write header: %w", err)
	}
	for _, s := range stmts {
		if err := cw.Write([]string{s.S.Value, s.P.Value, s.O.Value}); err != nil {
			return fmt.Errorf("csvconv: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvconv: flush: %w", err)
	}
	return nil
}

// RowsToKV stores each table row as a JSON object in the key-value store,
// keyed by keyCol's value. Rows with NULL keys are skipped and counted in
// skipped.
func RowsToKV(t *rdbms.Table, keyCol string, store kvstore.Store) (stored, skipped int, err error) {
	schema := t.Schema()
	ki := schema.Index(keyCol)
	if ki < 0 {
		return 0, 0, fmt.Errorf("csvconv: no key column %q", keyCol)
	}
	for _, row := range t.Rows() {
		if row[ki].Null {
			skipped++
			continue
		}
		obj := make(map[string]string, len(schema))
		for ci, col := range schema {
			if row[ci].Null {
				continue
			}
			obj[col.Name] = row[ci].String()
		}
		data, err := json.Marshal(obj)
		if err != nil {
			return stored, skipped, fmt.Errorf("csvconv: encode row: %w", err)
		}
		if err := store.Put(row[ki].String(), data); err != nil {
			return stored, skipped, fmt.Errorf("csvconv: store row: %w", err)
		}
		stored++
	}
	return stored, skipped, nil
}

// KVToCSV exports every key-value pair (values must be the JSON objects
// RowsToKV writes) as CSV. Columns are the union of all object keys,
// sorted; the row key is written in a leading "_key" column.
func KVToCSV(store kvstore.Store, w io.Writer) error {
	keys, err := store.Keys()
	if err != nil {
		return fmt.Errorf("csvconv: list keys: %w", err)
	}
	objs := make([]map[string]string, 0, len(keys))
	colSet := make(map[string]bool)
	for _, k := range keys {
		data, err := store.Get(k)
		if err != nil {
			return fmt.Errorf("csvconv: get %s: %w", k, err)
		}
		var obj map[string]string
		if err := json.Unmarshal(data, &obj); err != nil {
			return fmt.Errorf("csvconv: decode %s: %w", k, err)
		}
		for c := range obj {
			colSet[c] = true
		}
		objs = append(objs, obj)
	}
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"_key"}, cols...)); err != nil {
		return fmt.Errorf("csvconv: write header: %w", err)
	}
	for i, k := range keys {
		rec := make([]string, 0, len(cols)+1)
		rec = append(rec, k)
		for _, c := range cols {
			rec = append(rec, objs[i][c])
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvconv: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvconv: flush: %w", err)
	}
	return nil
}
