package csvconv

import (
	"strings"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/rdbms"
	"repro/internal/rdf"
)

const peopleCSV = "id,name,age\np1,alice,30\np2,bob,25\np3,,35\n"

func importedTable(t *testing.T) (*rdbms.DB, *rdbms.Table) {
	t.Helper()
	db := rdbms.NewDB()
	tab, err := db.ImportCSV("people", strings.NewReader(peopleCSV))
	if err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func TestTableToStatements(t *testing.T) {
	_, tab := importedTable(t)
	stmts, err := TableToStatements(tab, "id", "kb:")
	if err != nil {
		t.Fatal(err)
	}
	// p1 and p2 have name+age (2 each); p3 has name NULL so only age.
	if len(stmts) != 5 {
		t.Fatalf("statements = %d, want 5: %v", len(stmts), stmts)
	}
	g := rdf.NewGraph()
	if _, err := g.AddAll(stmts); err != nil {
		t.Fatal(err)
	}
	res, err := g.Query(`SELECT ?n WHERE { <kb:p1> <kb:name> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "alice" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestTableToStatementsBadColumn(t *testing.T) {
	_, tab := importedTable(t)
	if _, err := TableToStatements(tab, "ghost", "kb:"); err == nil {
		t.Error("missing subject column accepted")
	}
}

func TestStatementsTableRoundTrip(t *testing.T) {
	_, tab := importedTable(t)
	stmts, err := TableToStatements(tab, "id", "kb:")
	if err != nil {
		t.Fatal(err)
	}
	db2 := rdbms.NewDB()
	spo, err := StatementsToTable(db2, "triples", stmts)
	if err != nil {
		t.Fatal(err)
	}
	if spo.Len() != len(stmts) {
		t.Errorf("table rows = %d, want %d", spo.Len(), len(stmts))
	}
	rs, err := db2.Exec("SELECT object FROM triples WHERE subject = 'kb:p2' AND predicate = 'kb:age'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text != "25" {
		t.Errorf("lookup = %+v", rs)
	}
	// Back to statements.
	back, err := TableToStatementsBack(spo)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(stmts) {
		t.Fatalf("round trip = %d statements, want %d", len(back), len(stmts))
	}
	g1, g2 := rdf.NewGraph(), rdf.NewGraph()
	if _, err := g1.AddAll(stmts); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.AddAll(back); err != nil {
		t.Fatal(err)
	}
	for _, s := range g1.All() {
		if !g2.Has(s) {
			t.Errorf("lost statement %s", s)
		}
	}
}

func TestCSVToStatementsDirect(t *testing.T) {
	stmts, err := CSVToStatements(strings.NewReader(peopleCSV), "id", "kb:")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 5 {
		t.Errorf("statements = %d, want 5", len(stmts))
	}
}

func TestStatementsToCSV(t *testing.T) {
	stmts := []rdf.Statement{
		{S: rdf.NewIRI("kb:p1"), P: rdf.NewIRI("kb:name"), O: rdf.NewLiteral("alice")},
	}
	var out strings.Builder
	if err := StatementsToCSV(&out, stmts); err != nil {
		t.Fatal(err)
	}
	want := "subject,predicate,object\nkb:p1,kb:name,alice\n"
	if out.String() != want {
		t.Errorf("csv = %q, want %q", out.String(), want)
	}
}

func TestRowsToKVAndBack(t *testing.T) {
	_, tab := importedTable(t)
	store := kvstore.NewMemory()
	stored, skipped, err := RowsToKV(tab, "id", store)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 3 || skipped != 0 {
		t.Errorf("stored/skipped = %d/%d", stored, skipped)
	}
	data, err := store.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"alice"`) {
		t.Errorf("record = %s", data)
	}
	var out strings.Builder
	if err := KVToCSV(store, &out); err != nil {
		t.Fatal(err)
	}
	csvText := out.String()
	if !strings.HasPrefix(csvText, "_key,age,id,name\n") {
		t.Errorf("header = %q", csvText)
	}
	if !strings.Contains(csvText, "p2,25,p2,bob") {
		t.Errorf("missing row: %q", csvText)
	}
}

func TestRowsToKVSkipsNullKeys(t *testing.T) {
	db := rdbms.NewDB()
	tab, err := db.ImportCSV("t", strings.NewReader("k,v\na,1\n,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.NewMemory()
	stored, skipped, err := RowsToKV(tab, "k", store)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 1 || skipped != 1 {
		t.Errorf("stored/skipped = %d/%d, want 1/1", stored, skipped)
	}
}

func TestRowsToKVBadColumn(t *testing.T) {
	_, tab := importedTable(t)
	if _, _, err := RowsToKV(tab, "ghost", kvstore.NewMemory()); err == nil {
		t.Error("missing key column accepted")
	}
}

func TestFullConversionCycle(t *testing.T) {
	// CSV -> table -> RDF -> table -> CSV preserves the data (modulo
	// type stringification).
	db, tab := importedTable(t)
	stmts, err := TableToStatements(tab, "id", "kb:")
	if err != nil {
		t.Fatal(err)
	}
	spo, err := StatementsToTable(db, "spo", stmts)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := spo.ExportCSV(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kb:p1,kb:name,alice", "kb:p2,kb:age,25", "kb:p3,kb:age,35"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("cycle output missing %q:\n%s", want, out.String())
		}
	}
}
