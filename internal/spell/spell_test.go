package spell

import (
	"context"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/service"
)

func newChecker() *Checker {
	return NewChecker(lexicon.Dictionary(), map[string]int{"market": 100, "made": 50})
}

func TestKnownWordsPassThrough(t *testing.T) {
	c := newChecker()
	for _, w := range []string{"market", "economy", "Germany", "GOOD"} {
		if !c.Known(w) {
			t.Errorf("Known(%q) = false", w)
		}
		got, ok := c.Correct(w)
		if !ok || got != lower(w) {
			t.Errorf("Correct(%q) = (%q, %v)", w, got, ok)
		}
	}
}

func lower(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		out[i] = b
	}
	return string(out)
}

func TestCorrectEditDistance1(t *testing.T) {
	c := newChecker()
	tests := []struct{ in, want string }{
		{"marke", "market"},   // delete
		{"markte", "market"},  // transpose
		{"merket", "market"},  // replace
		{"markett", "market"}, // insert
	}
	for _, tt := range tests {
		got, ok := c.Correct(tt.in)
		if !ok || got != tt.want {
			t.Errorf("Correct(%q) = (%q, %v), want %q", tt.in, got, ok, tt.want)
		}
	}
}

func TestCorrectEditDistance2(t *testing.T) {
	c := newChecker()
	got, ok := c.Correct("marrkte") // two edits from market
	if !ok || got != "market" {
		t.Errorf("Correct(marrkte) = (%q, %v), want market", got, ok)
	}
}

func TestCorrectHopeless(t *testing.T) {
	c := newChecker()
	if got, ok := c.Correct("zzzzqqqqxxxx"); ok {
		t.Errorf("Correct(gibberish) = %q, want no candidate", got)
	}
}

func TestCorrectPrefersFrequent(t *testing.T) {
	// "mare" is distance-1 from both "made" (freq 50) and "mark"... use
	// explicit small dictionary to control.
	c := NewChecker([]string{"cat", "car"}, map[string]int{"car": 10, "cat": 1})
	got, ok := c.Correct("caz")
	if !ok || got != "car" {
		t.Errorf("Correct(caz) = (%q, %v), want car (more frequent)", got, ok)
	}
}

func TestCorrectDeterministicTieBreak(t *testing.T) {
	c := NewChecker([]string{"bat", "cat"}, nil) // equal freq
	got, ok := c.Correct("aat")
	if !ok || got != "bat" {
		t.Errorf("Correct(aat) = (%q, %v), want bat (alphabetical tie-break)", got, ok)
	}
}

func TestCheckFlagsMisspellings(t *testing.T) {
	c := newChecker()
	text := "The markte grew while the economy improved."
	corrs := c.Check(text)
	if len(corrs) != 1 {
		t.Fatalf("corrections = %+v, want 1", corrs)
	}
	if corrs[0].Word != "markte" || corrs[0].Suggestion != "market" {
		t.Errorf("correction = %+v", corrs[0])
	}
	if text[corrs[0].Offset:corrs[0].Offset+6] != "markte" {
		t.Errorf("offset %d wrong", corrs[0].Offset)
	}
}

func TestCheckSkipsNumbersAndShort(t *testing.T) {
	c := newChecker()
	corrs := c.Check("In 2026 a 42 x grew")
	for _, corr := range corrs {
		if corr.Word == "2026" || corr.Word == "42" || corr.Word == "x" || corr.Word == "a" {
			t.Errorf("flagged %q", corr.Word)
		}
	}
}

func TestCheckCleanText(t *testing.T) {
	c := newChecker()
	if corrs := c.Check("The market and the economy improved."); len(corrs) != 0 {
		t.Errorf("clean text flagged: %+v", corrs)
	}
}

func TestServiceAdapter(t *testing.T) {
	c := newChecker()
	svc := c.Service(service.Info{Name: "spell-remote", Category: "spell"})
	resp, err := svc.Invoke(context.Background(), service.Request{Op: "spellcheck", Text: "the markte"})
	if err != nil {
		t.Fatal(err)
	}
	corrs, err := DecodeCorrections(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 1 || corrs[0].Suggestion != "market" {
		t.Errorf("corrections = %+v", corrs)
	}
}

func TestServiceBadOp(t *testing.T) {
	svc := newChecker().Service(service.Info{Name: "s", Category: "spell"})
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "translate"}); err == nil {
		t.Error("expected error for unknown op")
	}
}

func TestSize(t *testing.T) {
	if newChecker().Size() < 400 {
		t.Errorf("Size = %d, want >= 400", newChecker().Size())
	}
}
