// Package spell implements the personalized knowledge base's spell checker
// (paper §3): dictionary-based with edit-distance candidate generation in
// the style of Norvig's corrector. The paper's point is architectural — a
// local spell checker "is generally faster as it avoids the overheads of
// remote communication" and costs nothing per call; the Service adapter
// lets the same checker also play the role of the remote alternative in
// experiments.
package spell

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/nlu"
	"repro/internal/service"
)

// Checker is an immutable spell checker; construct with NewChecker and use
// concurrently.
type Checker struct {
	// freq maps known words to their frequency rank weight (higher =
	// more common).
	freq map[string]int
}

// NewChecker builds a checker over the dictionary. freqs optionally
// supplies word frequencies; missing words default to 1. Words are
// lower-cased.
func NewChecker(dictionary []string, freqs map[string]int) *Checker {
	c := &Checker{freq: make(map[string]int, len(dictionary))}
	for _, w := range dictionary {
		lw := strings.ToLower(w)
		f := 1
		if freqs != nil {
			if n, ok := freqs[lw]; ok && n > 0 {
				f = n
			}
		}
		c.freq[lw] = f
	}
	return c
}

// Known reports whether the word is in the dictionary.
func (c *Checker) Known(word string) bool {
	_, ok := c.freq[strings.ToLower(word)]
	return ok
}

// Size returns the dictionary size.
func (c *Checker) Size() int { return len(c.freq) }

// Correct returns the best correction for word: the word itself if known,
// else the highest-frequency dictionary word within edit distance 1, else
// within distance 2. ok is false when no candidate exists.
func (c *Checker) Correct(word string) (string, bool) {
	lw := strings.ToLower(word)
	if _, known := c.freq[lw]; known {
		return lw, true
	}
	if best, ok := c.best(edits1(lw)); ok {
		return best, true
	}
	// Distance 2: edits of edits. Generated lazily per candidate set.
	seen := make(map[string]bool)
	var d2 []string
	for _, e1 := range edits1(lw) {
		for _, e2 := range edits1(e1) {
			if !seen[e2] {
				seen[e2] = true
				if _, known := c.freq[e2]; known {
					d2 = append(d2, e2)
				}
			}
		}
	}
	return c.best(d2)
}

// best picks the known candidate with the highest frequency, breaking ties
// alphabetically for determinism.
func (c *Checker) best(candidates []string) (string, bool) {
	bestWord, bestFreq := "", -1
	for _, cand := range candidates {
		f, known := c.freq[cand]
		if !known {
			continue
		}
		if f > bestFreq || (f == bestFreq && cand < bestWord) {
			bestWord, bestFreq = cand, f
		}
	}
	return bestWord, bestFreq >= 0
}

const alphabet = "abcdefghijklmnopqrstuvwxyz"

// edits1 generates all strings at edit distance 1 (deletes, transposes,
// replaces, inserts).
func edits1(word string) []string {
	var out []string
	n := len(word)
	for i := 0; i <= n; i++ {
		left, right := word[:i], word[i:]
		if len(right) > 0 {
			out = append(out, left+right[1:]) // delete
			if len(right) > 1 {
				out = append(out, left+string(right[1])+string(right[0])+right[2:]) // transpose
			}
			for _, ch := range alphabet {
				out = append(out, left+string(ch)+right[1:]) // replace
			}
		}
		for _, ch := range alphabet {
			out = append(out, left+string(ch)+right) // insert
		}
	}
	return out
}

// Correction is one flagged word in a checked text.
type Correction struct {
	Word       string `json:"word"`
	Suggestion string `json:"suggestion,omitempty"`
	Offset     int    `json:"offset"`
}

// Check tokenizes text and returns a correction for every unknown word.
// Numbers and single letters are skipped.
func (c *Checker) Check(text string) []Correction {
	var out []Correction
	for _, tok := range nlu.Tokenize(text) {
		if len(tok.Lower) < 2 || isNumber(tok.Lower) || c.Known(tok.Lower) {
			continue
		}
		corr := Correction{Word: tok.Text, Offset: tok.Start}
		if sugg, ok := c.Correct(tok.Lower); ok && sugg != tok.Lower {
			corr.Suggestion = sugg
		}
		out = append(out, corr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

func isNumber(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Service wraps the checker as a service.Service (op "spellcheck", Text
// carries the document, response body is the JSON corrections list). Used
// to model the paper's remote spell-check services for the local-vs-remote
// comparison.
func (c *Checker) Service(info service.Info) service.Service {
	return service.Func{
		Meta: info,
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			if req.Op != "spellcheck" && req.Op != "" {
				return service.Response{}, fmt.Errorf("spell: unsupported op %q: %w", req.Op, service.ErrBadRequest)
			}
			body, err := json.Marshal(c.Check(req.Text))
			if err != nil {
				return service.Response{}, fmt.Errorf("spell: encode: %w", err)
			}
			return service.Response{Body: body, ContentType: "application/json"}, nil
		},
	}
}

// DecodeCorrections parses the service response body.
func DecodeCorrections(resp service.Response) ([]Correction, error) {
	var out []Correction
	if err := json.Unmarshal(resp.Body, &out); err != nil {
		return nil, fmt.Errorf("spell: decode: %w", err)
	}
	return out, nil
}
