package spell

import (
	"testing"

	"repro/internal/lexicon"
)

func BenchmarkCorrectKnownWord(b *testing.B) {
	c := NewChecker(lexicon.Dictionary(), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Correct("market"); !ok {
			b.Fatal("known word failed")
		}
	}
}

func BenchmarkCorrectEdit1(b *testing.B) {
	c := NewChecker(lexicon.Dictionary(), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Correct("markte"); !ok {
			b.Fatal("edit-1 correction failed")
		}
	}
}

func BenchmarkCorrectEdit2(b *testing.B) {
	c := NewChecker(lexicon.Dictionary(), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Correct("marrkte"); !ok {
			b.Fatal("edit-2 correction failed")
		}
	}
}

func BenchmarkCheckParagraph(b *testing.B) {
	c := NewChecker(lexicon.Dictionary(), nil)
	text := "The markte in Germny grew while the economi improved across the regon."
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if got := c.Check(text); len(got) == 0 {
			b.Fatal("no corrections")
		}
	}
}
