package spell_test

import (
	"fmt"

	"repro/internal/lexicon"
	"repro/internal/spell"
)

func ExampleChecker_Check() {
	checker := spell.NewChecker(lexicon.Dictionary(), nil)
	for _, c := range checker.Check("The markte in Germny improved.") {
		fmt.Printf("%s -> %s\n", c.Word, c.Suggestion)
	}
	// Output:
	// markte -> market
	// Germny -> germany
}
