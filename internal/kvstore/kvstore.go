// Package kvstore implements the key-value storage substrate the
// personalized knowledge base uses (paper §3: data can be stored in
// "relational database management systems (RDBMS), key-value stores, RDF
// triple stores, and ... CSV files"). It provides an in-memory store and a
// file-backed persistent store with the same interface, snapshots, and
// ordered iteration.
package kvstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("kvstore: not found")

// Store is the common key-value interface. Values are opaque bytes; the
// knowledge base layers encoding, encryption, and compression above this.
type Store interface {
	// Put stores value under key, replacing any existing value.
	Put(key string, value []byte) error
	// Get returns the value for key or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes key; deleting an absent key is not an error.
	Delete(key string) error
	// Keys returns all keys in sorted order.
	Keys() ([]string, error)
	// Len returns the number of stored pairs.
	Len() (int, error)
}

// Memory is an in-memory Store, safe for concurrent use.
type Memory struct {
	mu   sync.RWMutex
	data map[string][]byte
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{data: make(map[string][]byte)}
}

// Put implements Store. The value is copied.
func (m *Memory) Put(key string, value []byte) error {
	cp := make([]byte, len(value))
	copy(cp, value)
	m.mu.Lock()
	m.data[key] = cp
	m.mu.Unlock()
	return nil
}

// Get implements Store. The returned slice is a copy.
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.RLock()
	v, ok := m.data[key]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.data, key)
	m.mu.Unlock()
	return nil
}

// Keys implements Store.
func (m *Memory) Keys() ([]string, error) {
	m.mu.RLock()
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	m.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Len implements Store.
func (m *Memory) Len() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data), nil
}

// Snapshot returns a deep copy of the current contents.
func (m *Memory) Snapshot() map[string][]byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string][]byte, len(m.data))
	for k, v := range m.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// File is a persistent Store backed by a single gob-encoded file. Every
// mutation rewrites the file atomically (temp + rename); contents load at
// open. It favors simplicity and crash safety over write throughput, which
// matches its knowledge-base role of durable local storage.
type File struct {
	mu   sync.Mutex
	path string
	data map[string][]byte
}

var _ Store = (*File)(nil)

// OpenFile opens (or creates) a file-backed store at path.
func OpenFile(path string) (*File, error) {
	f := &File{path: path, data: make(map[string][]byte)}
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return f, nil
		}
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	defer func() { _ = file.Close() }()
	if err := gob.NewDecoder(file).Decode(&f.data); err != nil {
		return nil, fmt.Errorf("kvstore: decode %s: %w", path, err)
	}
	return f, nil
}

// flush must be called with the lock held.
func (f *File) flush() error {
	tmp := f.path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kvstore: create temp: %w", err)
	}
	if err := gob.NewEncoder(file).Encode(f.data); err != nil {
		_ = file.Close()
		return fmt.Errorf("kvstore: encode: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("kvstore: close temp: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		return fmt.Errorf("kvstore: rename: %w", err)
	}
	return nil
}

// Put implements Store.
func (f *File) Put(key string, value []byte) error {
	cp := make([]byte, len(value))
	copy(cp, value)
	f.mu.Lock()
	defer f.mu.Unlock()
	old, had := f.data[key]
	f.data[key] = cp
	if err := f.flush(); err != nil {
		// Roll back the in-memory state so memory and disk agree.
		if had {
			f.data[key] = old
		} else {
			delete(f.data, key)
		}
		return err
	}
	return nil
}

// Get implements Store.
func (f *File) Get(key string) ([]byte, error) {
	f.mu.Lock()
	v, ok := f.data[key]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete implements Store.
func (f *File) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	old, had := f.data[key]
	if !had {
		return nil
	}
	delete(f.data, key)
	if err := f.flush(); err != nil {
		f.data[key] = old
		return err
	}
	return nil
}

// Keys implements Store.
func (f *File) Keys() ([]string, error) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.data))
	for k := range f.data {
		keys = append(keys, k)
	}
	f.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Len implements Store.
func (f *File) Len() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.data), nil
}
