package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// storeUnderTest runs the same conformance suite against both
// implementations.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	f, err := OpenFile(filepath.Join(t.TempDir(), "kv.gob"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "file": f}
}

func TestStoreConformance(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			// Empty store.
			if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get(missing) = %v, want ErrNotFound", err)
			}
			if n, _ := s.Len(); n != 0 {
				t.Errorf("Len = %d, want 0", n)
			}
			// Put/Get round trip.
			if err := s.Put("a", []byte("1")); err != nil {
				t.Fatal(err)
			}
			v, err := s.Get("a")
			if err != nil || string(v) != "1" {
				t.Errorf("Get(a) = (%q, %v)", v, err)
			}
			// Overwrite.
			if err := s.Put("a", []byte("2")); err != nil {
				t.Fatal(err)
			}
			v, _ = s.Get("a")
			if string(v) != "2" {
				t.Errorf("overwritten Get = %q", v)
			}
			// Keys sorted.
			if err := s.Put("c", []byte("3")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("b", []byte("3")); err != nil {
				t.Fatal(err)
			}
			keys, err := s.Keys()
			if err != nil || !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
				t.Errorf("Keys = (%v, %v)", keys, err)
			}
			// Delete.
			if err := s.Delete("b"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("b"); !errors.Is(err, ErrNotFound) {
				t.Error("b survived Delete")
			}
			if err := s.Delete("b"); err != nil {
				t.Errorf("double Delete = %v, want nil", err)
			}
			if n, _ := s.Len(); n != 2 {
				t.Errorf("Len = %d, want 2", n)
			}
		})
	}
}

func TestValueIsolation(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			buf := []byte("original")
			if err := s.Put("k", buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 'X' // caller mutation must not affect store
			v, _ := s.Get("k")
			if string(v) != "original" {
				t.Error("store aliased caller's buffer")
			}
			v[0] = 'Y' // returned slice mutation must not affect store
			v2, _ := s.Get("k")
			if string(v2) != "original" {
				t.Error("store returned shared buffer")
			}
		})
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.gob")
	f1, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f1.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f1.Delete("key-3"); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := f2.Len(); n != 9 {
		t.Errorf("reopened Len = %d, want 9", n)
	}
	v, err := f2.Get("key-7")
	if err != nil || string(v) != "val-7" {
		t.Errorf("reopened Get = (%q, %v)", v, err)
	}
	if _, err := f2.Get("key-3"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key resurrected after reopen")
	}
}

func TestMemorySnapshotIsolated(t *testing.T) {
	m := NewMemory()
	if err := m.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	snap["k"][0] = 'X'
	v, _ := m.Get("k")
	if string(v) != "v" {
		t.Error("snapshot shares backing arrays")
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k-%d", i%50)
				if err := m.Put(key, []byte{byte(g)}); err != nil {
					t.Errorf("Put: %v", err)
				}
				if _, err := m.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get: %v", err)
				}
				if i%10 == 0 {
					_ = m.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(key string, value []byte) bool {
		if err := m.Put(key, value); err != nil {
			return false
		}
		got, err := m.Get(key)
		if err != nil {
			return false
		}
		if len(got) == 0 && len(value) == 0 {
			return true
		}
		return reflect.DeepEqual(got, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpenFileBadContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.gob")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("corrupt file should fail to open")
	}
}
