package predict

import (
	"testing"
	"time"
)

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

func TestPredictLinearSizeLatency(t *testing.T) {
	// Latency = 5ms + 0.01ms per KB, as the paper's storage example:
	// time to store an object grows with its size.
	p := New(Config{MinObservations: 4})
	for kb := 1.0; kb <= 64; kb *= 2 {
		p.Observe([]float64{kb}, ms(5+0.01*kb))
	}
	got, err := p.Predict([]float64{1000}, nil)
	if err != nil {
		t.Fatalf("Predict error = %v", err)
	}
	want := ms(15)
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Predict(1000KB) = %v, want ~%v", got, want)
	}
}

func TestPredictCrossover(t *testing.T) {
	// Paper §2: s1 lowest latency for small objects, s2 for large.
	// s1: 1ms + 0.02ms/KB; s2: 10ms + 0.001ms/KB. Crossover ~474KB.
	s1 := New(Config{MinObservations: 4})
	s2 := New(Config{MinObservations: 4})
	for kb := 10.0; kb <= 10240; kb *= 2 {
		s1.Observe([]float64{kb}, ms(1+0.02*kb))
		s2.Observe([]float64{kb}, ms(10+0.001*kb))
	}
	small := []float64{100}
	large := []float64{4096}
	p1s, _ := s1.Predict(small, nil)
	p2s, _ := s2.Predict(small, nil)
	if p1s >= p2s {
		t.Errorf("small object: s1 (%v) should beat s2 (%v)", p1s, p2s)
	}
	p1l, _ := s1.Predict(large, nil)
	p2l, _ := s2.Predict(large, nil)
	if p2l >= p1l {
		t.Errorf("large object: s2 (%v) should beat s1 (%v)", p2l, p1l)
	}
}

func TestPredictNoDataPolicies(t *testing.T) {
	peers := []float64{10, 20, 90}
	tests := []struct {
		name    string
		cfg     Config
		peers   []float64
		want    time.Duration
		wantErr bool
	}{
		{"none fails", Config{Policy: DefaultNone}, peers, 0, true},
		{"peer average", Config{Policy: DefaultPeerAverage}, peers, ms(40), false},
		{"peer median", Config{Policy: DefaultPeerMedian}, peers, ms(20), false},
		{"user default", Config{Policy: DefaultUser, UserDefault: ms(33)}, nil, ms(33), false},
		{"peer average without peers fails", Config{Policy: DefaultPeerAverage}, nil, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := New(tt.cfg)
			got, err := p.Predict([]float64{1}, tt.peers)
			if tt.wantErr {
				if err == nil {
					t.Errorf("expected error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Predict error = %v", err)
			}
			if got != tt.want {
				t.Errorf("Predict = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPredictOwnMeanBeforeModel(t *testing.T) {
	// With data but below MinObservations, predict the own mean rather
	// than falling back to peers.
	p := New(Config{MinObservations: 10, Policy: DefaultPeerAverage})
	p.Observe([]float64{1}, ms(100))
	p.Observe([]float64{2}, ms(200))
	got, err := p.Predict([]float64{1}, []float64{1})
	if err != nil {
		t.Fatalf("Predict error = %v", err)
	}
	if got != ms(150) {
		t.Errorf("Predict = %v, want 150ms (own mean)", got)
	}
}

func TestPredictKNNFallbackOnDegenerateParams(t *testing.T) {
	// All observations share the same parameter value, so regression on
	// it is singular; k-NN should still produce the local mean.
	p := New(Config{MinObservations: 3, KNeighbors: 3})
	for i := 0; i < 6; i++ {
		p.Observe([]float64{5}, ms(40))
	}
	got, err := p.Predict([]float64{5}, nil)
	if err != nil {
		t.Fatalf("Predict error = %v", err)
	}
	if got != ms(40) {
		t.Errorf("Predict = %v, want 40ms", got)
	}
}

func TestPredictMultiParam(t *testing.T) {
	// Latency depends on two parameters: size and replication factor.
	p := New(Config{MinObservations: 6})
	for size := 1.0; size <= 8; size++ {
		for rep := 1.0; rep <= 3; rep++ {
			p.Observe([]float64{size, rep}, ms(2*size+5*rep))
		}
	}
	got, err := p.Predict([]float64{10, 2}, nil)
	if err != nil {
		t.Fatalf("Predict error = %v", err)
	}
	want := ms(30)
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Predict = %v, want ~%v", got, want)
	}
}

func TestPredictRaggedParamsPadded(t *testing.T) {
	p := New(Config{MinObservations: 4})
	p.Observe([]float64{1}, ms(10))
	p.Observe([]float64{2, 1}, ms(20))
	p.Observe([]float64{3}, ms(30))
	p.Observe([]float64{4, 2}, ms(40))
	p.Observe([]float64{5, 1}, ms(50))
	if _, err := p.Predict([]float64{3}, nil); err != nil {
		t.Errorf("ragged params should not fail: %v", err)
	}
}

func TestObserveAll(t *testing.T) {
	p := New(Config{MinObservations: 2})
	err := p.ObserveAll([][]float64{{1}, {2}, {3}}, []float64{10, 20, 30})
	if err != nil {
		t.Fatalf("ObserveAll error = %v", err)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	got, err := p.Predict([]float64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - ms(40); diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Predict = %v, want ~40ms", got)
	}
	if err := p.ObserveAll([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched ObserveAll should error")
	}
}

func TestObserveCopiesParams(t *testing.T) {
	p := New(Config{})
	params := []float64{9}
	p.Observe(params, ms(1))
	params[0] = 0
	// Force k-NN path over a single observation.
	got, err := p.Predict([]float64{9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != ms(1) {
		t.Errorf("Predict = %v, want 1ms", got)
	}
}

func TestPredictRejectsNegativeModelOutput(t *testing.T) {
	// Steeply decreasing latency extrapolates below zero for large x; the
	// predictor must not return a negative duration.
	p := New(Config{MinObservations: 3})
	p.Observe([]float64{1}, ms(30))
	p.Observe([]float64{2}, ms(20))
	p.Observe([]float64{3}, ms(10))
	p.Observe([]float64{4}, ms(1))
	got, err := p.Predict([]float64{100}, nil)
	if err != nil {
		t.Fatalf("Predict error = %v", err)
	}
	if got < 0 {
		t.Errorf("Predict = %v, want non-negative", got)
	}
}
