// Package predict implements latency prediction from latency parameters
// (paper §2): the SDK records past latency measurements together with the
// latency parameters that produced them (for example the size of an
// argument) and predicts the latency of a new invocation from its
// parameters. A regression model is fitted when enough observations exist;
// a k-nearest-neighbour estimate is the fallback; configurable defaults
// cover the no-data case (paper: average or median of similar services, or
// a user-provided default).
package predict

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/stats"
)

// ErrNoData is returned when a predictor has no observations and no default
// policy resolves a value.
var ErrNoData = errors.New("predict: no data")

// DefaultPolicy resolves a prediction when a service has insufficient past
// data (paper §2: "default values are used which can be the average value
// for similar services, the median value for similar services, or default
// values provided by the user").
type DefaultPolicy int

// Default policies. They are consulted only when the target service lacks
// enough observations to fit a model.
const (
	// DefaultNone makes prediction fail with ErrNoData when there is no
	// model and no peer data.
	DefaultNone DefaultPolicy = iota + 1
	// DefaultPeerAverage uses the average latency of similar services.
	DefaultPeerAverage
	// DefaultPeerMedian uses the median latency of similar services.
	DefaultPeerMedian
	// DefaultUser uses a user-provided constant.
	DefaultUser
)

// Config configures a Predictor.
type Config struct {
	// MinObservations is the number of observations required before a
	// model is fitted. Below it the default policy applies. Default 8.
	MinObservations int
	// Policy selects the fallback behaviour. Default DefaultNone.
	Policy DefaultPolicy
	// UserDefault is the fallback latency for DefaultUser.
	UserDefault time.Duration
	// KNeighbors is the neighbourhood size for the k-NN estimate used
	// when regression fails (for example, collinear parameters).
	// Default 3.
	KNeighbors int
}

func (c *Config) fill() {
	if c.MinObservations <= 0 {
		c.MinObservations = 8
	}
	if c.Policy == 0 {
		c.Policy = DefaultNone
	}
	if c.KNeighbors <= 0 {
		c.KNeighbors = 3
	}
}

// Predictor predicts invocation latency for one service from latency
// parameters. It is not safe for concurrent use; callers own
// synchronization (the SDK core serializes access per service).
type Predictor struct {
	cfg    Config
	params [][]float64
	latMS  []float64

	model      stats.MultiModel
	modelValid bool
	dirty      bool
}

// New returns a Predictor with the given configuration.
func New(cfg Config) *Predictor {
	cfg.fill()
	return &Predictor{cfg: cfg}
}

// Observe records that an invocation with the given latency parameters took
// lat. Parameter vectors of differing lengths are allowed; shorter vectors
// are zero-padded to the longest seen.
func (p *Predictor) Observe(params []float64, lat time.Duration) {
	cp := make([]float64, len(params))
	copy(cp, params)
	p.params = append(p.params, cp)
	p.latMS = append(p.latMS, float64(lat)/float64(time.Millisecond))
	p.dirty = true
}

// ObserveAll bulk-loads observations, typically from a metrics monitor's
// ParamObservations.
func (p *Predictor) ObserveAll(params [][]float64, latencyMS []float64) error {
	if len(params) != len(latencyMS) {
		return fmt.Errorf("predict: length mismatch %d != %d", len(params), len(latencyMS))
	}
	for i := range params {
		cp := make([]float64, len(params[i]))
		copy(cp, params[i])
		p.params = append(p.params, cp)
		p.latMS = append(p.latMS, latencyMS[i])
	}
	p.dirty = true
	return nil
}

// Len returns the number of recorded observations.
func (p *Predictor) Len() int { return len(p.params) }

// Predict estimates the latency of an invocation with the given latency
// parameters. peersMS carries mean latencies (in milliseconds) of similar
// services for the peer default policies; it may be nil.
func (p *Predictor) Predict(params []float64, peersMS []float64) (time.Duration, error) {
	if len(p.params) >= p.cfg.MinObservations {
		if d, ok := p.predictModel(params); ok {
			return d, nil
		}
		if d, ok := p.predictKNN(params); ok {
			return d, nil
		}
	}
	// Not enough data (or degenerate data): mean of own observations
	// still beats any cross-service default.
	if len(p.latMS) > 0 {
		return msToDuration(stats.Mean(p.latMS)), nil
	}
	switch p.cfg.Policy {
	case DefaultPeerAverage:
		if len(peersMS) > 0 {
			return msToDuration(stats.Mean(peersMS)), nil
		}
	case DefaultPeerMedian:
		if len(peersMS) > 0 {
			return msToDuration(stats.Median(peersMS)), nil
		}
	case DefaultUser:
		return p.cfg.UserDefault, nil
	}
	return 0, ErrNoData
}

// predictModel fits (lazily, cached until new data arrives) a multiple
// linear regression of latency on the parameters and evaluates it.
func (p *Predictor) predictModel(params []float64) (time.Duration, bool) {
	if p.dirty {
		p.refit()
	}
	if !p.modelValid {
		return 0, false
	}
	padded := p.pad(params)
	v := p.model.Predict(padded)
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, false
	}
	return msToDuration(v), true
}

func (p *Predictor) refit() {
	p.dirty = false
	p.modelValid = false
	width := p.maxWidth()
	if width == 0 {
		return
	}
	rows := make([][]float64, len(p.params))
	for i, pr := range p.params {
		rows[i] = p.padTo(pr, width)
	}
	m, err := stats.FitMulti(rows, p.latMS)
	if err != nil {
		return
	}
	p.model = m
	p.modelValid = true
}

// predictKNN averages the latencies of the k nearest observations in
// parameter space (Euclidean distance on zero-padded vectors).
func (p *Predictor) predictKNN(params []float64) (time.Duration, bool) {
	if len(p.params) == 0 {
		return 0, false
	}
	width := p.maxWidth()
	q := p.padTo(params, width)
	type neigh struct {
		dist float64
		lat  float64
	}
	ns := make([]neigh, len(p.params))
	for i, pr := range p.params {
		row := p.padTo(pr, width)
		var d float64
		for j := range row {
			diff := row[j] - q[j]
			d += diff * diff
		}
		ns[i] = neigh{dist: d, lat: p.latMS[i]}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].dist < ns[j].dist })
	k := p.cfg.KNeighbors
	if k > len(ns) {
		k = len(ns)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += ns[i].lat
	}
	return msToDuration(sum / float64(k)), true
}

func (p *Predictor) maxWidth() int {
	w := 0
	for _, pr := range p.params {
		if len(pr) > w {
			w = len(pr)
		}
	}
	return w
}

func (p *Predictor) pad(params []float64) []float64 {
	return p.padTo(params, p.maxWidth())
}

func (p *Predictor) padTo(params []float64, width int) []float64 {
	out := make([]float64, width)
	copy(out, params)
	return out
}

func msToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
