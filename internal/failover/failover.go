// Package failover implements the rich SDK's failure handling (paper §2.1):
// retrying unresponsive services a user-specified number of times, falling
// over to lower-ranked services with similar functionality until a
// responsive one is found (with a per-service retry count), and invoking
// multiple services redundantly — all of them, the first to succeed, or a
// quorum.
package failover

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
	"repro/internal/xrand"
)

// Jitter selects how the computed backoff wait is randomized before
// sleeping. Without jitter, concurrent callers that failed together retry
// in lockstep and re-spike the recovering service — the thundering herd
// the AWS architecture blog's "Exponential Backoff And Jitter" analysis
// quantifies. Jitter only perturbs the slept duration; the underlying
// exponential schedule (and therefore the un-jittered cap behavior) is
// unchanged.
type Jitter int

const (
	// NoJitter sleeps the exact computed backoff (the historical
	// behavior; callers retry in lockstep).
	NoJitter Jitter = iota
	// FullJitter sleeps uniform(0, wait] — the strategy with the best
	// contention spread in the AWS analysis, and the default for the SDK
	// core's retry stage.
	FullJitter
	// EqualJitter sleeps wait/2 + uniform(0, wait/2], keeping at least
	// half the deterministic delay while still decorrelating callers.
	EqualJitter
)

// jitterSrc is the package-level RNG for backoff jitter. It is shared —
// and mutex-guarded — precisely so that concurrent callers draw different
// values: a per-call seeded source would reproduce the lockstep the jitter
// exists to break. SeedJitter pins the stream for deterministic tests.
var (
	jitterMu  sync.Mutex
	jitterSrc = xrand.New(1)
)

// SeedJitter reseeds the shared jitter stream. Tests use it to make
// jittered backoff schedules reproducible run to run.
func SeedJitter(seed int64) {
	jitterMu.Lock()
	jitterSrc.Reseed(seed)
	jitterMu.Unlock()
}

// jitterWait maps the deterministic wait through the jitter mode. The
// result is always in (0, wait] so a positive backoff never degenerates to
// a zero-sleep hot loop.
func jitterWait(wait time.Duration, j Jitter) time.Duration {
	if wait <= 0 || j == NoJitter {
		return wait
	}
	jitterMu.Lock()
	u := jitterSrc.Float64()
	jitterMu.Unlock()
	switch j {
	case FullJitter:
		w := time.Duration(u * float64(wait))
		if w <= 0 {
			w = 1
		}
		return w
	case EqualJitter:
		half := wait / 2
		w := half + time.Duration(u*float64(wait-half))
		if w <= 0 {
			w = 1
		}
		return w
	default:
		return wait
	}
}

// RetryPolicy controls how a single service is retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values below 1 are treated as 1 (no retry).
	MaxAttempts int
	// Backoff is the wait before the first retry.
	Backoff time.Duration
	// BackoffFactor multiplies the wait after each retry; values below 1
	// are treated as 1 (constant backoff).
	BackoffFactor float64
	// MaxBackoff caps the wait; 0 means uncapped.
	MaxBackoff time.Duration
	// Jitter randomizes each slept backoff to decorrelate concurrent
	// retriers. The zero value (NoJitter) preserves the exact historical
	// schedule.
	Jitter Jitter
	// RetryOn decides whether an error is retryable. Nil means retry on
	// service.ErrUnavailable only — permanent errors (bad request,
	// quota) never retry by default.
	RetryOn func(error) bool
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) retryable(err error) bool {
	if p.RetryOn != nil {
		return p.RetryOn(err)
	}
	return errors.Is(err, service.ErrUnavailable)
}

// Invoke calls svc with retries per policy, sleeping the backoff on clk
// between attempts. It returns the response, the number of attempts made,
// and the final error. A nil clk uses the real clock. Context cancellation
// stops retrying immediately.
func Invoke(ctx context.Context, clk clock.Clock, svc service.Service, req service.Request, policy RetryPolicy) (service.Response, int, error) {
	return InvokeFunc(ctx, clk, func(ctx context.Context) (service.Response, error) {
		return svc.Invoke(ctx, req)
	}, policy)
}

// InvokeFunc is Invoke for a bare attempt function: it applies policy to
// fn, which performs one attempt. It exists for callers — such as the SDK
// core's RetryStage — whose single attempt is not a service.Service but a
// composed pipeline.
func InvokeFunc(ctx context.Context, clk clock.Clock, fn func(ctx context.Context) (service.Response, error), policy RetryPolicy) (service.Response, int, error) {
	if clk == nil {
		clk = clock.Real()
	}
	wait := policy.Backoff
	var lastErr error
	maxAttempts := policy.attempts()
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		resp, err := fn(ctx)
		if err == nil {
			return resp, attempt, nil
		}
		lastErr = err
		if !policy.retryable(err) || attempt == maxAttempts {
			return service.Response{}, attempt, err
		}
		if wait > 0 {
			select {
			case <-ctx.Done():
				return service.Response{}, attempt, fmt.Errorf("failover: %w (after %w)", ctx.Err(), lastErr)
			case <-clk.After(jitterWait(wait, policy.Jitter)):
			}
			factor := policy.BackoffFactor
			if factor > 1 {
				wait = time.Duration(float64(wait) * factor)
				if policy.MaxBackoff > 0 && wait > policy.MaxBackoff {
					wait = policy.MaxBackoff
				}
			}
		} else if ctx.Err() != nil {
			return service.Response{}, attempt, fmt.Errorf("failover: %w (after %w)", ctx.Err(), lastErr)
		}
	}
	return service.Response{}, maxAttempts, lastErr
}

// Step is one entry in a failover chain: a service plus its retry policy.
// The paper notes the number of retries "may be different for different
// services".
type Step struct {
	Service service.Service
	Policy  RetryPolicy
}

// Attempt records the outcome of trying one service in a chain.
type Attempt struct {
	Service  string
	Attempts int
	Err      error // nil if this service produced the returned response
}

// Chain tries services in rank order until one responds (paper §2.1: "start
// with higher ranked services and continue with lower ranked services until
// a responsive service is found"). It returns the first success, the
// per-service attempt log, and — if every service fails — an error joining
// all failures.
func Chain(ctx context.Context, clk clock.Clock, steps []Step, req service.Request) (service.Response, []Attempt, error) {
	if len(steps) == 0 {
		return service.Response{}, nil, errors.New("failover: empty chain")
	}
	attempts := make([]Attempt, 0, len(steps))
	var errs []error
	for _, step := range steps {
		resp, n, err := Invoke(ctx, clk, step.Service, req, step.Policy)
		name := step.Service.Info().Name
		attempts = append(attempts, Attempt{Service: name, Attempts: n, Err: err})
		if err == nil {
			return resp, attempts, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", name, err))
		if ctx.Err() != nil {
			break
		}
	}
	return service.Response{}, attempts, fmt.Errorf("failover: all services failed: %w", errors.Join(errs...))
}

// Result is the outcome of one service's invocation in a redundant call.
type Result struct {
	Service  string
	Response service.Response
	Err      error
	Latency  time.Duration
}

// InvokeAll invokes every service in parallel with the same request and
// waits for all of them — the paper's redundancy case, for example storing
// the same data in several cloud databases, or sending a document to
// several NLU services to compare and combine their output. The results
// are returned in input order.
func InvokeAll(ctx context.Context, clk clock.Clock, svcs []service.Service, req service.Request) []Result {
	if clk == nil {
		clk = clock.Real()
	}
	results := make([]Result, len(svcs))
	var wg sync.WaitGroup
	for i, svc := range svcs {
		wg.Add(1)
		go func(i int, svc service.Service) {
			defer wg.Done()
			start := clk.Now()
			resp, err := svc.Invoke(ctx, req)
			results[i] = Result{
				Service:  svc.Info().Name,
				Response: resp,
				Err:      err,
				Latency:  clk.Since(start),
			}
		}(i, svc)
	}
	wg.Wait()
	return results
}

// InvokeFirst invokes every service in parallel and returns as soon as one
// succeeds, cancelling the rest. If all fail it returns the joined errors.
func InvokeFirst(ctx context.Context, svcs []service.Service, req service.Request) (service.Response, string, error) {
	if len(svcs) == 0 {
		return service.Response{}, "", errors.New("failover: no services")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		name string
		resp service.Response
		err  error
	}
	ch := make(chan outcome, len(svcs))
	for _, svc := range svcs {
		go func(svc service.Service) {
			resp, err := svc.Invoke(ctx, req)
			ch <- outcome{name: svc.Info().Name, resp: resp, err: err}
		}(svc)
	}
	var errs []error
	for range svcs {
		o := <-ch
		if o.err == nil {
			return o.resp, o.name, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", o.name, o.err))
	}
	return service.Response{}, "", fmt.Errorf("failover: all services failed: %w", errors.Join(errs...))
}

// Quorum invokes every service in parallel and succeeds once quorum
// responses have arrived, returning those successes. If too many services
// fail for the quorum to be reachable it fails fast with the joined errors.
func Quorum(ctx context.Context, clk clock.Clock, svcs []service.Service, req service.Request, quorum int) ([]Result, error) {
	if quorum < 1 || quorum > len(svcs) {
		return nil, fmt.Errorf("failover: quorum %d out of range [1, %d]", quorum, len(svcs))
	}
	if clk == nil {
		clk = clock.Real()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan Result, len(svcs))
	for _, svc := range svcs {
		go func(svc service.Service) {
			start := clk.Now()
			resp, err := svc.Invoke(ctx, req)
			ch <- Result{Service: svc.Info().Name, Response: resp, Err: err, Latency: clk.Since(start)}
		}(svc)
	}
	var successes []Result
	var errs []error
	remaining := len(svcs)
	for remaining > 0 {
		r := <-ch
		remaining--
		if r.Err == nil {
			successes = append(successes, r)
			if len(successes) >= quorum {
				return successes, nil
			}
		} else {
			errs = append(errs, fmt.Errorf("%s: %w", r.Service, r.Err))
			if len(successes)+remaining < quorum {
				return successes, fmt.Errorf("failover: quorum %d unreachable (%d successes): %w", quorum, len(successes), errors.Join(errs...))
			}
		}
	}
	// Unreachable: the loop exits via one of the two returns above.
	return successes, fmt.Errorf("failover: quorum %d not reached (%d successes): %w", quorum, len(successes), errors.Join(errs...))
}
