package failover

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
)

// recordingClock is a clock.Clock whose After fires instantly and records
// every requested duration, so backoff schedules can be asserted exactly
// without real sleeping.
type recordingClock struct {
	mu   sync.Mutex
	durs []time.Duration
}

func newRecordingClock() *recordingClock { return &recordingClock{} }

var _ clock.Clock = (*recordingClock)(nil)

func (c *recordingClock) Now() time.Time                  { return time.Unix(0, 0) }
func (c *recordingClock) Sleep(d time.Duration)           { c.record(d) }
func (c *recordingClock) Since(t time.Time) time.Duration { return 0 }

func (c *recordingClock) After(d time.Duration) <-chan time.Time {
	c.record(d)
	ch := make(chan time.Time, 1)
	ch <- time.Unix(0, 0)
	return ch
}

func (c *recordingClock) record(d time.Duration) {
	c.mu.Lock()
	c.durs = append(c.durs, d)
	c.mu.Unlock()
}

func (c *recordingClock) waits() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.durs...)
}

// backoffSchedule runs one retried invocation against a permanently-failing
// service and returns the exact sequence of slept backoffs.
func backoffSchedule(t *testing.T, policy RetryPolicy) []time.Duration {
	t.Helper()
	svc := alwaysFail("dead", service.ErrUnavailable)
	clk := newRecordingClock()
	_, _, err := Invoke(context.Background(), clk, svc, service.Request{}, policy)
	if err == nil {
		t.Fatal("expected failure from permanently-failing service")
	}
	return clk.waits()
}

// TestFullJitterBreaksLockstep is the thundering-herd regression test: two
// concurrent retriers draw different backoff schedules under FullJitter.
// On the pre-fix code (no Jitter field, deterministic sleeps) the two
// schedules were identical every time, so the herd retried in lockstep.
func TestFullJitterBreaksLockstep(t *testing.T) {
	SeedJitter(7)
	policy := RetryPolicy{
		MaxAttempts:   4,
		Backoff:       100 * time.Millisecond,
		BackoffFactor: 2,
		Jitter:        FullJitter,
	}
	a := backoffSchedule(t, policy)
	b := backoffSchedule(t, policy)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("schedules = %v / %v, want 3 sleeps each", a, b)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("two retriers slept identical schedules %v — jitter is not decorrelating", a)
	}
}

// TestFullJitterDeterministicUnderSeed verifies reproducibility: reseeding
// the shared jitter stream replays the exact same jittered schedule.
func TestFullJitterDeterministicUnderSeed(t *testing.T) {
	policy := RetryPolicy{
		MaxAttempts:   5,
		Backoff:       50 * time.Millisecond,
		BackoffFactor: 2,
		MaxBackoff:    200 * time.Millisecond,
		Jitter:        FullJitter,
	}
	SeedJitter(123)
	a := backoffSchedule(t, policy)
	SeedJitter(123)
	b := backoffSchedule(t, policy)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sleep %d: %v vs %v — not deterministic under fixed seed", i, a[i], b[i])
		}
	}
}

// TestJitterBounds checks each mode's slept value stays within its
// contract: FullJitter in (0, wait], EqualJitter in (wait/2, wait],
// NoJitter exactly wait.
func TestJitterBounds(t *testing.T) {
	SeedJitter(99)
	base := 80 * time.Millisecond
	mk := func(j Jitter) RetryPolicy {
		return RetryPolicy{MaxAttempts: 6, Backoff: base, BackoffFactor: 2, MaxBackoff: base, Jitter: j}
	}
	// With MaxBackoff == Backoff every un-jittered wait is exactly base.
	for _, w := range backoffSchedule(t, mk(NoJitter)) {
		if w != base {
			t.Errorf("NoJitter slept %v, want exactly %v", w, base)
		}
	}
	for _, w := range backoffSchedule(t, mk(FullJitter)) {
		if w <= 0 || w > base {
			t.Errorf("FullJitter slept %v, want in (0, %v]", w, base)
		}
	}
	for _, w := range backoffSchedule(t, mk(EqualJitter)) {
		if w < base/2 || w > base {
			t.Errorf("EqualJitter slept %v, want in [%v, %v]", w, base/2, base)
		}
	}
}

// TestJitterPreservesGrowthEnvelope: jitter perturbs each sleep but the
// envelope still grows — the un-jittered base doubles underneath, so the
// max possible sleep per retry follows the exponential schedule.
func TestJitterPreservesGrowthEnvelope(t *testing.T) {
	SeedJitter(5)
	policy := RetryPolicy{
		MaxAttempts:   4,
		Backoff:       10 * time.Millisecond,
		BackoffFactor: 10,
		Jitter:        FullJitter,
	}
	ws := backoffSchedule(t, policy)
	caps := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second}
	if len(ws) != len(caps) {
		t.Fatalf("schedule = %v, want %d sleeps", ws, len(caps))
	}
	for i, w := range ws {
		if w <= 0 || w > caps[i] {
			t.Errorf("sleep %d = %v, want in (0, %v] (exponential envelope)", i, w, caps[i])
		}
	}
}
