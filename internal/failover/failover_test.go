package failover

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// failNTimes returns a service that fails transiently n times then
// succeeds, plus a counter of invocations.
func failNTimes(name string, n int) (service.Service, *int32) {
	var calls int32
	svc := service.Func{
		Meta: service.Info{Name: name, Category: "test"},
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			c := atomic.AddInt32(&calls, 1)
			if int(c) <= n {
				return service.Response{}, fmt.Errorf("try %d: %w", c, service.ErrUnavailable)
			}
			return service.Response{Body: []byte(name)}, nil
		},
	}
	return svc, &calls
}

func alwaysFail(name string, err error) service.Service {
	return service.Func{
		Meta: service.Info{Name: name, Category: "test"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			return service.Response{}, fmt.Errorf("%s: %w", name, err)
		},
	}
}

func alwaysOK(name string) service.Service {
	return service.Func{
		Meta: service.Info{Name: name, Category: "test"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			return service.Response{Body: []byte(name)}, nil
		},
	}
}

func TestInvokeRetriesTransientFailure(t *testing.T) {
	svc, calls := failNTimes("flaky", 2)
	resp, attempts, err := Invoke(context.Background(), nil, svc, service.Request{}, RetryPolicy{MaxAttempts: 5})
	if err != nil {
		t.Fatalf("Invoke error = %v", err)
	}
	if attempts != 3 || *calls != 3 {
		t.Errorf("attempts = %d, calls = %d, want 3", attempts, *calls)
	}
	if string(resp.Body) != "flaky" {
		t.Errorf("Body = %q", resp.Body)
	}
}

func TestInvokeExhaustsAttempts(t *testing.T) {
	svc, calls := failNTimes("dead", 100)
	_, attempts, err := Invoke(context.Background(), nil, svc, service.Request{}, RetryPolicy{MaxAttempts: 3})
	if !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("error = %v, want ErrUnavailable", err)
	}
	if attempts != 3 || *calls != 3 {
		t.Errorf("attempts = %d, calls = %d, want 3", attempts, *calls)
	}
}

func TestInvokeNoRetryOnPermanentError(t *testing.T) {
	svc := alwaysFail("bad", service.ErrBadRequest)
	_, attempts, err := Invoke(context.Background(), nil, svc, service.Request{}, RetryPolicy{MaxAttempts: 5})
	if !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("error = %v, want ErrBadRequest", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (permanent errors never retry)", attempts)
	}
}

func TestInvokeCustomRetryOn(t *testing.T) {
	svc := alwaysFail("q", service.ErrQuotaExceeded)
	policy := RetryPolicy{
		MaxAttempts: 3,
		RetryOn:     func(err error) bool { return errors.Is(err, service.ErrQuotaExceeded) },
	}
	_, attempts, _ := Invoke(context.Background(), nil, svc, service.Request{}, policy)
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (custom RetryOn)", attempts)
	}
}

func TestInvokeZeroAttemptsClamped(t *testing.T) {
	svc := alwaysOK("ok")
	_, attempts, err := Invoke(context.Background(), nil, svc, service.Request{}, RetryPolicy{MaxAttempts: 0})
	if err != nil || attempts != 1 {
		t.Errorf("attempts = %d err = %v, want 1 nil", attempts, err)
	}
}

func TestInvokeBackoffGrowsAndCaps(t *testing.T) {
	// A recording clock captures the exact slept schedule: 1ms, then
	// 10ms capped to 5ms, then 5ms again.
	svc, _ := failNTimes("slow", 3)
	policy := RetryPolicy{
		MaxAttempts:   4,
		Backoff:       time.Millisecond,
		BackoffFactor: 10,
		MaxBackoff:    5 * time.Millisecond,
	}
	clk := newRecordingClock()
	_, _, err := Invoke(context.Background(), clk, svc, service.Request{}, policy)
	if err != nil {
		t.Fatalf("Invoke error = %v", err)
	}
	want := []time.Duration{time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	got := clk.waits()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInvokeContextCancelDuringBackoff(t *testing.T) {
	svc, _ := failNTimes("flaky", 100)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	policy := RetryPolicy{MaxAttempts: 100, Backoff: time.Hour}
	start := time.Now()
	_, _, err := Invoke(ctx, nil, svc, service.Request{}, policy)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt backoff")
	}
}

func TestChainFirstServiceWins(t *testing.T) {
	steps := []Step{
		{Service: alwaysOK("primary")},
		{Service: alwaysOK("secondary")},
	}
	resp, attempts, err := Chain(context.Background(), nil, steps, service.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "primary" {
		t.Errorf("Body = %q, want primary", resp.Body)
	}
	if len(attempts) != 1 || attempts[0].Service != "primary" {
		t.Errorf("attempts = %+v", attempts)
	}
}

func TestChainFallsOver(t *testing.T) {
	steps := []Step{
		{Service: alwaysFail("down", service.ErrUnavailable), Policy: RetryPolicy{MaxAttempts: 2}},
		{Service: alwaysOK("backup")},
	}
	resp, attempts, err := Chain(context.Background(), nil, steps, service.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "backup" {
		t.Errorf("Body = %q, want backup", resp.Body)
	}
	if len(attempts) != 2 {
		t.Fatalf("attempts = %+v, want 2 entries", attempts)
	}
	if attempts[0].Attempts != 2 || attempts[0].Err == nil {
		t.Errorf("first step = %+v, want 2 failed attempts", attempts[0])
	}
	if attempts[1].Err != nil {
		t.Errorf("second step = %+v, want success", attempts[1])
	}
}

func TestChainPerServiceRetryCounts(t *testing.T) {
	// Paper: retries per service "may be different for different
	// services".
	s1 := alwaysFail("s1", service.ErrUnavailable)
	s2 := alwaysFail("s2", service.ErrUnavailable)
	steps := []Step{
		{Service: s1, Policy: RetryPolicy{MaxAttempts: 3}},
		{Service: s2, Policy: RetryPolicy{MaxAttempts: 1}},
	}
	_, attempts, err := Chain(context.Background(), nil, steps, service.Request{})
	if err == nil {
		t.Fatal("expected chain failure")
	}
	if attempts[0].Attempts != 3 || attempts[1].Attempts != 1 {
		t.Errorf("attempts = %+v, want 3 then 1", attempts)
	}
}

func TestChainAllFailJoinsErrors(t *testing.T) {
	steps := []Step{
		{Service: alwaysFail("a", service.ErrUnavailable)},
		{Service: alwaysFail("b", service.ErrUnavailable)},
	}
	_, _, err := Chain(context.Background(), nil, steps, service.Request{})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, name := range []string{"a", "b"} {
		if !errors.Is(err, service.ErrUnavailable) {
			t.Errorf("joined error should be ErrUnavailable")
		}
		if !containsStr(err.Error(), name) {
			t.Errorf("error %q should mention %s", err, name)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	}()
}

func TestChainEmpty(t *testing.T) {
	if _, _, err := Chain(context.Background(), nil, nil, service.Request{}); err == nil {
		t.Error("empty chain should error")
	}
}

func TestInvokeAllResultsInOrder(t *testing.T) {
	svcs := []service.Service{
		alwaysOK("a"),
		alwaysFail("b", service.ErrUnavailable),
		alwaysOK("c"),
	}
	results := InvokeAll(context.Background(), nil, svcs, service.Request{})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Service != "a" || results[1].Service != "b" || results[2].Service != "c" {
		t.Errorf("results out of order: %+v", results)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("successes reported errors")
	}
	if results[1].Err == nil {
		t.Error("failure not reported")
	}
}

func TestInvokeAllParallel(t *testing.T) {
	// Three services each sleeping 30ms must finish in ~max, not ~sum.
	mk := func(name string) service.Service {
		return service.Func{
			Meta: service.Info{Name: name, Category: "t"},
			Fn: func(context.Context, service.Request) (service.Response, error) {
				time.Sleep(30 * time.Millisecond)
				return service.Response{}, nil
			},
		}
	}
	svcs := []service.Service{mk("a"), mk("b"), mk("c")}
	start := time.Now()
	InvokeAll(context.Background(), nil, svcs, service.Request{})
	if elapsed := time.Since(start); elapsed > 80*time.Millisecond {
		t.Errorf("elapsed = %v, want ~30ms (parallel)", elapsed)
	}
}

func TestInvokeFirstReturnsFastestSuccess(t *testing.T) {
	slow := service.Func{
		Meta: service.Info{Name: "slow", Category: "t"},
		Fn: func(ctx context.Context, _ service.Request) (service.Response, error) {
			select {
			case <-time.After(500 * time.Millisecond):
				return service.Response{Body: []byte("slow")}, nil
			case <-ctx.Done():
				return service.Response{}, ctx.Err()
			}
		},
	}
	fast := alwaysOK("fast")
	resp, name, err := InvokeFirst(context.Background(), []service.Service{slow, fast}, service.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if name != "fast" || string(resp.Body) != "fast" {
		t.Errorf("winner = %s, want fast", name)
	}
}

func TestInvokeFirstAllFail(t *testing.T) {
	svcs := []service.Service{
		alwaysFail("a", service.ErrUnavailable),
		alwaysFail("b", service.ErrUnavailable),
	}
	_, _, err := InvokeFirst(context.Background(), svcs, service.Request{})
	if err == nil {
		t.Error("expected failure")
	}
}

func TestInvokeFirstEmpty(t *testing.T) {
	if _, _, err := InvokeFirst(context.Background(), nil, service.Request{}); err == nil {
		t.Error("empty service list should error")
	}
}

func TestQuorumReached(t *testing.T) {
	svcs := []service.Service{
		alwaysOK("a"),
		alwaysFail("b", service.ErrUnavailable),
		alwaysOK("c"),
	}
	results, err := Quorum(context.Background(), nil, svcs, service.Request{}, 2)
	if err != nil {
		t.Fatalf("Quorum error = %v", err)
	}
	if len(results) != 2 {
		t.Errorf("got %d successes, want 2", len(results))
	}
}

func TestQuorumUnreachableFailsFast(t *testing.T) {
	svcs := []service.Service{
		alwaysFail("a", service.ErrUnavailable),
		alwaysFail("b", service.ErrUnavailable),
		alwaysOK("c"),
	}
	_, err := Quorum(context.Background(), nil, svcs, service.Request{}, 3)
	if err == nil {
		t.Error("quorum 3 with 2 failures should fail")
	}
}

func TestQuorumInvalid(t *testing.T) {
	svcs := []service.Service{alwaysOK("a")}
	if _, err := Quorum(context.Background(), nil, svcs, service.Request{}, 0); err == nil {
		t.Error("quorum 0 should error")
	}
	if _, err := Quorum(context.Background(), nil, svcs, service.Request{}, 2); err == nil {
		t.Error("quorum > len should error")
	}
}

func TestInvokeFuncAppliesPolicyToBareFunction(t *testing.T) {
	var calls int
	fn := func(ctx context.Context) (service.Response, error) {
		calls++
		if calls < 3 {
			return service.Response{}, fmt.Errorf("try %d: %w", calls, service.ErrUnavailable)
		}
		return service.Response{Body: []byte("ok")}, nil
	}
	resp, attempts, err := InvokeFunc(context.Background(), nil, fn, RetryPolicy{MaxAttempts: 3})
	if err != nil || string(resp.Body) != "ok" {
		t.Fatalf("resp = %q, err = %v", resp.Body, err)
	}
	if attempts != 3 || calls != 3 {
		t.Errorf("attempts = %d, calls = %d, want 3 each", attempts, calls)
	}
}

func TestInvokeFuncPermanentErrorStopsImmediately(t *testing.T) {
	var calls int
	fn := func(ctx context.Context) (service.Response, error) {
		calls++
		return service.Response{}, fmt.Errorf("bad: %w", service.ErrBadRequest)
	}
	_, attempts, err := InvokeFunc(context.Background(), nil, fn, RetryPolicy{MaxAttempts: 5})
	if !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if attempts != 1 || calls != 1 {
		t.Errorf("attempts = %d, calls = %d, want 1 each", attempts, calls)
	}
}
