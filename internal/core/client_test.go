package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/rank"
	"repro/internal/service"
	"repro/internal/simsvc"
)

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func countingService(name, category string, fail *atomic.Bool) (service.Service, *int32) {
	var calls int32
	return service.Func{
		Meta: service.Info{Name: name, Category: category, CostPerCall: 1},
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			atomic.AddInt32(&calls, 1)
			if fail != nil && fail.Load() {
				return service.Response{}, fmt.Errorf("%s down: %w", name, service.ErrUnavailable)
			}
			return service.Response{Body: []byte(name + ":" + req.Text)}, nil
		},
	}, &calls
}

func TestInvokeUnknownService(t *testing.T) {
	c := newClient(t, Config{})
	_, err := c.Invoke(context.Background(), "nope", service.Request{})
	if !errors.Is(err, ErrUnknownService) {
		t.Errorf("error = %v, want ErrUnknownService", err)
	}
}

func TestInvokeRecordsMetrics(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("s1", "nlu", nil)
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "hello"}); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Monitor("s1").Snapshot()
	if snap.Count != 5 || snap.Failures != 0 {
		t.Errorf("snapshot = %+v, want 5 successes", snap)
	}
}

func TestInvokeCachingAvoidsRedundantCalls(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("cached", "nlu", nil)
	if err := c.Register(svc, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	req := service.Request{Op: "analyze", Text: "same text"}
	for i := 0; i < 10; i++ {
		resp, err := c.Invoke(context.Background(), "cached", req)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != "cached:same text" {
			t.Errorf("Body = %q", resp.Body)
		}
	}
	if *calls != 1 {
		t.Errorf("service called %d times, want 1 (cache)", *calls)
	}
	if st := c.CacheStats(); st.Hits != 9 {
		t.Errorf("cache hits = %d, want 9", st.Hits)
	}
}

func TestInvokeNotCacheableByDefault(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("store", "storage", nil)
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	req := service.Request{Op: "put", Key: "k", Data: []byte("v")}
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "store", req); err != nil {
			t.Fatal(err)
		}
	}
	if *calls != 3 {
		t.Errorf("service called %d times, want 3 (no caching for storage)", *calls)
	}
}

func TestInvokeNoCacheOption(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("c", "nlu", nil)
	if err := c.Register(svc, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	req := service.Request{Text: "x"}
	if _, err := c.Invoke(context.Background(), "c", req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "c", req, NoCache()); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Errorf("calls = %d, want 2 (NoCache bypass)", *calls)
	}
}

func TestInvalidateCache(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("c", "nlu", nil)
	if err := c.Register(svc, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	req := service.Request{Text: "x"}
	if _, err := c.Invoke(context.Background(), "c", req); err != nil {
		t.Fatal(err)
	}
	c.InvalidateCache()
	if _, err := c.Invoke(context.Background(), "c", req); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Errorf("calls = %d, want 2 after invalidation", *calls)
	}
}

func TestInvokeRetriesPerRegisteredPolicy(t *testing.T) {
	c := newClient(t, Config{})
	var n int32
	flaky := service.Func{
		Meta: service.Info{Name: "flaky", Category: "t"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			if atomic.AddInt32(&n, 1) < 3 {
				return service.Response{}, service.ErrUnavailable
			}
			return service.Response{Body: []byte("ok")}, nil
		},
	}
	if err := c.Register(flaky, WithRetry(failover.RetryPolicy{MaxAttempts: 5})); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Invoke(context.Background(), "flaky", service.Request{})
	if err != nil || string(resp.Body) != "ok" {
		t.Errorf("Invoke = (%q, %v)", resp.Body, err)
	}
	if n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
}

func TestInvokeQualityRecorded(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("q", "nlu", nil)
	err := c.Register(svc, WithQuality(func(_ service.Request, resp service.Response) float64 {
		return float64(len(resp.Body)) / 10
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "q", service.Request{Text: "12345678"}); err != nil {
		t.Fatal(err)
	}
	mean, n := c.Monitor("q").MeanQuality()
	if n != 1 || mean != 1.0 { // "q:12345678" = 10 chars
		t.Errorf("quality = (%v, %d), want (1.0, 1)", mean, n)
	}
}

func TestClientQuotaBlocksWithoutInvoking(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("lim", "nlu", nil)
	q := service.NewQuota(2, time.Hour, nil)
	if err := c.Register(svc, WithClientQuota(q)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Invoke(context.Background(), "lim", service.Request{}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Invoke(context.Background(), "lim", service.Request{})
	if !errors.Is(err, ErrClientQuota) {
		t.Errorf("error = %v, want ErrClientQuota", err)
	}
	if *calls != 2 {
		t.Errorf("service called %d times, want 2 (third blocked client-side)", *calls)
	}
}

func TestInvokeAsyncWithCallback(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("a", "nlu", nil)
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	f := c.InvokeAsync(context.Background(), "a", service.Request{Text: "hi"})
	got := make(chan string, 1)
	f.Listen(func(resp service.Response, err error) {
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(resp.Body)
	})
	select {
	case v := <-got:
		if v != "a:hi" {
			t.Errorf("callback got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("callback never ran")
	}
}

func TestSelectPrefersFasterService(t *testing.T) {
	c := newClient(t, Config{Scorer: rank.Weighted{W: rank.Weights{Alpha: 1}}})
	fast := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "fast", Category: "storage"},
		Latency: simsvc.Constant{D: time.Millisecond},
	})
	slow := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "slow", Category: "storage"},
		Latency: simsvc.Constant{D: 30 * time.Millisecond},
	})
	if err := c.Register(fast); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(slow); err != nil {
		t.Fatal(err)
	}
	// Train the monitors.
	for i := 0; i < 10; i++ {
		if _, err := c.Invoke(context.Background(), "fast", service.Request{}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(context.Background(), "slow", service.Request{}); err != nil {
			t.Fatal(err)
		}
	}
	name, err := c.Select("storage", service.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if name != "fast" {
		t.Errorf("Select = %s, want fast", name)
	}
}

func TestInvokeCategoryFailsOver(t *testing.T) {
	c := newClient(t, Config{})
	var downFlag atomic.Bool
	downFlag.Store(true)
	primary, _ := countingService("primary", "search", &downFlag)
	backup, _ := countingService("backup", "search", nil)
	// Lower cost makes primary rank first with default weights.
	if err := c.Register(primary, WithRetry(failover.RetryPolicy{MaxAttempts: 2})); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(backup); err != nil {
		t.Fatal(err)
	}
	resp, attempts, err := c.InvokeCategory(context.Background(), "search", service.Request{Text: "q"})
	if err != nil {
		t.Fatalf("InvokeCategory error = %v (attempts %+v)", err, attempts)
	}
	if string(resp.Body) != "backup:q" {
		t.Errorf("Body = %q, want backup:q", resp.Body)
	}
	if len(attempts) != 2 {
		t.Errorf("attempts = %+v, want 2 services tried", attempts)
	}
}

func TestInvokeCategoryUnknown(t *testing.T) {
	c := newClient(t, Config{})
	_, _, err := c.InvokeCategory(context.Background(), "ghost", service.Request{})
	if !errors.Is(err, ErrUnknownCategory) {
		t.Errorf("error = %v, want ErrUnknownCategory", err)
	}
}

func TestInvokeAllRedundant(t *testing.T) {
	c := newClient(t, Config{})
	a, aCalls := countingService("a", "kv", nil)
	b, bCalls := countingService("b", "kv", nil)
	if err := c.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b); err != nil {
		t.Fatal(err)
	}
	results, err := c.InvokeAll(context.Background(), "kv", service.Request{Op: "put", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if *aCalls != 1 || *bCalls != 1 {
		t.Errorf("calls = (%d, %d), want both invoked", *aCalls, *bCalls)
	}
	// Both recorded in monitoring.
	if c.Monitor("a").Count() != 1 || c.Monitor("b").Count() != 1 {
		t.Error("redundant invocations not monitored")
	}
}

func TestPredictLatencyFromHistory(t *testing.T) {
	c := newClient(t, Config{})
	svc := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "sz", Category: "storage"},
		Latency: simsvc.SizeLinear{Base: time.Millisecond, PerKB: time.Millisecond},
	})
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	for kb := 1; kb <= 256; kb *= 2 {
		req := service.Request{Op: "put", Data: make([]byte, kb*1024)}
		if _, err := c.Invoke(context.Background(), "sz", req); err != nil {
			t.Fatal(err)
		}
	}
	// Predict for 64KB: ~65ms from the linear model.
	d, err := c.PredictLatency("sz", []float64{64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if d < 40*time.Millisecond || d > 120*time.Millisecond {
		t.Errorf("PredictLatency = %v, want ~65ms", d)
	}
}

func TestPredictLatencyUnknownService(t *testing.T) {
	c := newClient(t, Config{})
	if _, err := c.PredictLatency("nope", nil); !errors.Is(err, ErrUnknownService) {
		t.Errorf("error = %v, want ErrUnknownService", err)
	}
}

func TestEstimatesIncludeCostAndQuality(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("e", "nlu", nil)
	err := c.Register(svc, WithQuality(func(service.Request, service.Response) float64 { return 0.75 }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "e", service.Request{Text: "x"}); err != nil {
		t.Fatal(err)
	}
	ests, err := c.Estimates("nlu", service.Request{Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Cost != 1 || ests[0].Quality != 0.75 {
		t.Errorf("estimates = %+v", ests)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("dup", "x", nil)
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(svc); err == nil {
		t.Error("duplicate Register should fail")
	}
}
