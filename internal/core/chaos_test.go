package core

// Chaos-mode interaction tests: the breaker, retry, and deadline stages
// exercised together against a simulated service whose failure and latency
// knobs are rescripted mid-run, the way the loadgen chaos controller does
// it. These pin the storm lifecycle: the breaker opens while the storm
// rages, half-open probes burn against a still-failing service without
// letting traffic through, and the first post-storm probe closes the
// circuit again.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/failover"
	"repro/internal/service"
	"repro/internal/simsvc"
)

func breakerStateOf(t *testing.T, c *Client, name string) string {
	t.Helper()
	for _, st := range c.BreakerStates() {
		if st.Service == name {
			return st.State
		}
	}
	t.Fatalf("no breaker state for %s", name)
	return ""
}

func TestBreakerOpensDuringFailStormAndRecoversAfter(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	svc := simsvc.New(simsvc.Config{
		Info:  service.Info{Name: "stormy", Category: "cog"},
		Seed:  1,
		Clock: clk,
	})
	c := newClient(t, Config{
		Clock:        clk,
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 1},
	})
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Calm before the storm: calls succeed, breaker closed.
	if _, err := c.Invoke(ctx, "stormy", service.Request{}); err != nil {
		t.Fatalf("pre-storm Invoke: %v", err)
	}
	if st := breakerStateOf(t, c, "stormy"); st != "closed" {
		t.Fatalf("pre-storm breaker = %s, want closed", st)
	}

	// The storm hits: every call fails with 5xx.
	svc.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(ctx, "stormy", service.Request{}); !errors.Is(err, service.ErrUnavailable) {
			t.Fatalf("storm call %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	if st := breakerStateOf(t, c, "stormy"); st != "open" {
		t.Fatalf("after %d consecutive failures breaker = %s, want open", 3, st)
	}

	// Open breaker: calls fail fast with ErrBreakerOpen and never reach
	// the service.
	before := svc.Invocations()
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(ctx, "stormy", service.Request{}); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open-breaker call: err = %v, want ErrBreakerOpen", err)
		}
	}
	if got := svc.Invocations(); got != before {
		t.Fatalf("open breaker let %d calls through to the service", got-before)
	}

	// Cooldown elapses mid-storm: exactly one half-open probe reaches the
	// still-down service, fails, and re-opens the circuit.
	clk.Advance(100 * time.Millisecond)
	if _, err := c.Invoke(ctx, "stormy", service.Request{}); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("probe err = %v, want ErrUnavailable (probe reached the service)", err)
	}
	if got := svc.Invocations(); got != before+1 {
		t.Fatalf("half-open admitted %d calls, want exactly 1 probe", got-before)
	}
	if _, err := c.Invoke(ctx, "stormy", service.Request{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post-probe call err = %v, want ErrBreakerOpen (circuit re-opened)", err)
	}

	// The storm ends; after the next cooldown the probe succeeds and the
	// circuit closes for good.
	svc.SetDown(false)
	clk.Advance(100 * time.Millisecond)
	if _, err := c.Invoke(ctx, "stormy", service.Request{}); err != nil {
		t.Fatalf("post-storm probe: %v", err)
	}
	if st := breakerStateOf(t, c, "stormy"); st != "closed" {
		t.Fatalf("post-storm breaker = %s, want closed", st)
	}
	if _, err := c.Invoke(ctx, "stormy", service.Request{}); err != nil {
		t.Fatalf("post-recovery Invoke: %v", err)
	}
}

func TestRetryExhaustionCountsOnceTowardBreaker(t *testing.T) {
	// A retried invocation makes several attempts but the breaker — which
	// sits outside the retry stage — records one outcome per invocation,
	// so the threshold counts invocations, not attempts.
	clk := clock.NewVirtual(time.Unix(0, 0))
	svc := simsvc.New(simsvc.Config{
		Info:  service.Info{Name: "retrystorm", Category: "cog"},
		Seed:  1,
		Clock: clk,
	})
	svc.SetFailRate(1)
	c := newClient(t, Config{
		Clock:        clk,
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 2},
	})
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Two invocations = four attempts; threshold 3 must NOT trip yet.
	for i := 0; i < 2; i++ {
		if _, err := c.Invoke(ctx, "retrystorm", service.Request{}); !errors.Is(err, service.ErrUnavailable) {
			t.Fatalf("storm call err = %v", err)
		}
	}
	if got := svc.Invocations(); got != 4 {
		t.Fatalf("attempts reaching the service = %d, want 4 (2 invocations x 2 attempts)", got)
	}
	if st := breakerStateOf(t, c, "retrystorm"); st != "closed" {
		t.Fatalf("after 2 failed invocations (4 attempts) breaker = %s, want closed — attempts must not count individually", st)
	}
	// The third failed invocation trips it.
	if _, err := c.Invoke(ctx, "retrystorm", service.Request{}); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("third call err = %v", err)
	}
	if st := breakerStateOf(t, c, "retrystorm"); st != "open" {
		t.Fatalf("after 3 failed invocations breaker = %s, want open", st)
	}
}

func TestLatencyStormTripsBreakerViaDeadline(t *testing.T) {
	// A latency spike (not an outright failure) must still open the
	// breaker: the deadline stage converts too-slow into ErrDeadline,
	// which the breaker counts as transient. Real clock — DeadlineStage's
	// timeout runs on context machinery.
	svc := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "spiky", Category: "cog"},
		Latency: simsvc.Constant{D: 2 * time.Millisecond},
		Seed:    1,
	})
	c := newClient(t, Config{
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
		Deadline:     DeadlineConfig{Factor: 4, Floor: 5 * time.Millisecond, Cap: 20 * time.Millisecond},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 1},
	})
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm the predictor: successful ~2ms calls teach it the service's
	// normal latency, arming the deadline at ~max(5ms, 8ms-capped).
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(ctx, "spiky", service.Request{}); err != nil {
			t.Fatalf("warmup call %d: %v", i, err)
		}
	}

	// The spike: +200ms on every call blows any deadline <= 20ms.
	svc.SetExtraLatency(200 * time.Millisecond)
	for i := 0; i < 3; i++ {
		_, err := c.Invoke(ctx, "spiky", service.Request{})
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("spiked call %d: err = %v, want ErrDeadline", i, err)
		}
	}
	if st := breakerStateOf(t, c, "spiky"); st != "open" {
		t.Fatalf("after 3 deadline blowouts breaker = %s, want open", st)
	}
	if _, err := c.Invoke(ctx, "spiky", service.Request{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen (latency storm tripped the circuit)", err)
	}

	// Spike clears; after cooldown the probe sees normal latency and the
	// circuit closes.
	svc.SetExtraLatency(0)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Invoke(ctx, "spiky", service.Request{}); err != nil {
		t.Fatalf("post-spike probe: %v", err)
	}
	if st := breakerStateOf(t, c, "spiky"); st != "closed" {
		t.Fatalf("post-spike breaker = %s, want closed", st)
	}
}
