package core

import (
	"context"
	"time"

	"repro/internal/failover"
	"repro/internal/service"
	"repro/internal/trace"
)

// This file defines the SDK's invocation pipeline. The paper's Fig. 2
// presents the rich SDK as a stack of orthogonal features — caching,
// monitoring, quality evaluation, ranking, failure handling, quotas — and
// the pipeline realizes that stack literally: every cross-cutting concern
// is a Middleware (the http.RoundTripper / gRPC-interceptor pattern), and a
// Client invocation is the composed chain applied to a transport that calls
// the underlying service. New concerns (tracing, hedging, sharding) plug in
// as stages without touching Client.Invoke.

// Invoker performs one invocation described by call. It is the unit the
// middleware chain composes: the innermost Invoker is the transport that
// calls the service itself; every stage wraps an Invoker with one concern.
type Invoker func(ctx context.Context, call *Call) (service.Response, error)

// Middleware wraps an Invoker with one cross-cutting concern. A stage that
// acts before the call mutates ctx or call and delegates; a stage that acts
// after inspects the response, the error, and the fields later stages
// recorded on call (Attempts, Elapsed).
type Middleware func(next Invoker) Invoker

// Compose wraps base with mw, first element outermost, and returns the
// resulting Invoker:
//
//	Compose(t, a, b)(ctx, call) == a(b(t))(ctx, call)
func Compose(base Invoker, mw ...Middleware) Invoker {
	for i := len(mw) - 1; i >= 0; i-- {
		base = mw[i](base)
	}
	return base
}

// Call describes one invocation flowing through the middleware chain. The
// Client constructs it with the registration's resolved settings; stages
// read the fields they need and record their outcomes back onto it.
// Per-registration constants (name, service, cacheability, user hooks)
// live behind the reg pointer so building a Call costs a handful of
// stores, not a copy of the whole registration.
//
// Calls are pooled: a Call is valid only until the chain returns, so
// middleware must not retain one (or its Req) past the invocation.
type Call struct {
	// Req is the request being invoked.
	Req service.Request
	// NoCache bypasses the response cache for this call.
	NoCache bool
	// Attempts is the number of transport attempts made, recorded by
	// RetryStage.
	Attempts int
	// Elapsed is the measured transport time including retries and
	// backoff, recorded by RetryStage.
	Elapsed time.Duration

	reg           *registration
	retryOverride *failover.RetryPolicy // Retry invoke option, else reg.policy
	params        []float64

	// span is the innermost open trace span for this call. TraceStage sets
	// the root; each built-in stage swaps in its child around next so inner
	// stages nest correctly. The zero Span (tracing disabled or the trace
	// unsampled) is inert, so stages never need to test it.
	span trace.Span
}

// Name returns the target service's registered name.
func (c *Call) Name() string { return c.reg.name }

// Retry returns the effective retry policy for this call (client default <
// registration < invocation), resolved lazily so calls the cache answers
// never touch it.
func (c *Call) Retry() failover.RetryPolicy {
	if c.retryOverride != nil {
		return *c.retryOverride
	}
	return c.reg.policy
}

// Span returns the call's innermost open trace span. Custom middleware can
// annotate it; the zero Span (tracing disabled or unsampled) accepts and
// discards annotations.
func (c *Call) Span() trace.Span { return c.span }

// Service returns the transport the terminal Invoker calls.
func (c *Call) Service() service.Service { return c.reg.svc }

// Cacheable reports whether the service opted into response caching.
func (c *Call) Cacheable() bool { return c.reg.cacheable }

// LatencyParams returns the call's latency parameters (paper §2), computing
// them on first use so the cache-hit fast path never pays for a
// user-supplied extractor.
func (c *Call) LatencyParams() []float64 {
	if c.params == nil && c.reg != nil && c.reg.params != nil {
		c.params = c.reg.params(c.Req)
	}
	return c.params
}

// transport returns the terminal Invoker: one attempt against the service.
func transport() Invoker {
	return func(ctx context.Context, call *Call) (service.Response, error) {
		return call.reg.svc.Invoke(ctx, call.Req)
	}
}
