package core

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/service"
)

// TestErrorKindsSurviveHTTPBoundary round-trips each error kind through
// service.Handler -> real HTTP -> service.HTTPClient -> the client's full
// middleware chain, asserting errors.Is still identifies the kind on the
// far side. The rich SDK's failure handling, quota accounting, and breaker
// all dispatch on these kinds, so the wire envelope must preserve them.
func TestErrorKindsSurviveHTTPBoundary(t *testing.T) {
	cases := []struct {
		name    string
		remote  error
		want    error
		wantNot []error
	}{
		{
			name:    "unavailable",
			remote:  fmt.Errorf("backend down: %w", service.ErrUnavailable),
			want:    service.ErrUnavailable,
			wantNot: []error{service.ErrQuotaExceeded, service.ErrBadRequest},
		},
		{
			name:    "quota",
			remote:  fmt.Errorf("monthly cap: %w", service.ErrQuotaExceeded),
			want:    service.ErrQuotaExceeded,
			wantNot: []error{service.ErrUnavailable, service.ErrBadRequest},
		},
		{
			name:    "bad_request",
			remote:  fmt.Errorf("unparseable: %w", service.ErrBadRequest),
			want:    service.ErrBadRequest,
			wantNot: []error{service.ErrUnavailable, service.ErrQuotaExceeded},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			remote := service.Func{
				Meta: service.Info{Name: "remote-" + tc.name, Category: "nlu"},
				Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
					return service.Response{}, tc.remote
				},
			}
			srv := httptest.NewServer(service.Handler(remote))
			defer srv.Close()

			c := newClient(t, Config{})
			proxy := service.NewHTTPClient(remote.Meta, srv.URL, 5*time.Second)
			// MaxAttempts 1 keeps the unavailable case to a single wire
			// call; kind preservation is what is under test, not retries.
			c.MustRegister(proxy, WithRetry(failover.RetryPolicy{MaxAttempts: 1}))

			_, err := c.Invoke(context.Background(), remote.Meta.Name, service.Request{Text: "x"})
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want errors.Is(err, %v)", err, tc.want)
			}
			for _, not := range tc.wantNot {
				if errors.Is(err, not) {
					t.Errorf("err = %v unexpectedly matches %v", err, not)
				}
			}
		})
	}
}

// TestErrorKindRoundTripDrivesSDKBehavior goes one step further: the kind
// surviving the wire must still trigger the SDK's kind-dispatched logic —
// a remote quota error is not retried, a remote unavailability is.
func TestErrorKindRoundTripDrivesSDKBehavior(t *testing.T) {
	var calls atomic.Int32
	remote := service.Func{
		Meta: service.Info{Name: "remote", Category: "nlu"},
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			calls.Add(1)
			if req.Op == "quota" {
				return service.Response{}, fmt.Errorf("cap: %w", service.ErrQuotaExceeded)
			}
			return service.Response{}, fmt.Errorf("down: %w", service.ErrUnavailable)
		},
	}
	srv := httptest.NewServer(service.Handler(remote))
	defer srv.Close()

	c := newClient(t, Config{})
	proxy := service.NewHTTPClient(remote.Meta, srv.URL, 5*time.Second)
	c.MustRegister(proxy, WithRetry(failover.RetryPolicy{MaxAttempts: 3}))

	if _, err := c.Invoke(context.Background(), "remote", service.Request{Op: "quota"}); !errors.Is(err, service.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("quota error retried: %d wire calls, want 1", n)
	}
	calls.Store(0)
	if _, err := c.Invoke(context.Background(), "remote", service.Request{Op: "down"}); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("unavailable error: %d wire calls, want 3 (retried)", n)
	}
}
