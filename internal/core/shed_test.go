package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
)

func TestShedderAdmitsUnderLimit(t *testing.T) {
	s := NewShedder(ShedConfig{TargetP99: 10 * time.Millisecond, MaxInFlight: 2, MinInFlight: 1}, nil)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("first two acquires should be admitted")
	}
	if s.TryAcquire() {
		t.Fatal("third acquire over limit 2 should be shed")
	}
	if s.InFlight() != 2 || s.Admitted() != 2 || s.Rejected() != 1 {
		t.Errorf("inflight=%d admitted=%d rejected=%d, want 2/2/1", s.InFlight(), s.Admitted(), s.Rejected())
	}
	s.Release(time.Millisecond)
	if !s.TryAcquire() {
		t.Fatal("acquire after release should be admitted")
	}
}

func TestShedderAIMDDecreasesOverTarget(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := NewShedder(ShedConfig{
		TargetP99:   5 * time.Millisecond,
		MaxInFlight: 64, MinInFlight: 2,
		Window: 10 * time.Millisecond, DecreaseFactor: 0.5,
	}, clk)
	// A window of 50ms observations blows the 5ms target: the limit must
	// halve on adaptation.
	for i := 0; i < 20; i++ {
		if !s.TryAcquire() {
			t.Fatal("acquire under open limit")
		}
		s.Release(50 * time.Millisecond)
	}
	clk.Advance(20 * time.Millisecond) // a full window has elapsed
	if !s.TryAcquire() {
		t.Fatal("acquire")
	}
	s.Release(50 * time.Millisecond) // triggers adapt
	if got := s.Limit(); got != 32 {
		t.Errorf("limit after over-target window = %d, want 32 (64 * 0.5)", got)
	}
	// Repeated over-target windows keep decreasing but floor at MinInFlight.
	for w := 0; w < 10; w++ {
		clk.Advance(20 * time.Millisecond)
		if !s.TryAcquire() {
			t.Fatal("acquire")
		}
		s.Release(50 * time.Millisecond)
	}
	if got := s.Limit(); got != 2 {
		t.Errorf("limit after sustained overload = %d, want MinInFlight 2", got)
	}
}

func TestShedderRecoversAfterPressure(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := NewShedder(ShedConfig{
		TargetP99:   5 * time.Millisecond,
		MaxInFlight: 64, MinInFlight: 2,
		Window: 10 * time.Millisecond, DecreaseFactor: 0.5,
	}, clk)
	// Crush the limit to the floor.
	for w := 0; w < 12; w++ {
		clk.Advance(20 * time.Millisecond)
		if !s.TryAcquire() {
			t.Fatal("acquire")
		}
		s.Release(50 * time.Millisecond)
	}
	if s.Limit() != 2 {
		t.Fatalf("limit = %d, want floor 2", s.Limit())
	}
	// Healthy windows with rejection pressure grow the limit back toward
	// the cap.
	for w := 0; w < 30 && s.Limit() < 64; w++ {
		// Sustain demand: fill the limit, shed one, observe fast calls.
		for s.TryAcquire() {
		}
		for s.InFlight() > 0 {
			s.Release(time.Millisecond)
		}
		clk.Advance(20 * time.Millisecond)
		if !s.TryAcquire() {
			t.Fatal("acquire")
		}
		s.Release(time.Millisecond)
	}
	if got := s.Limit(); got != 64 {
		t.Errorf("limit after recovery = %d, want back at MaxInFlight 64", got)
	}
}

func TestShedderConcurrentInvariant(t *testing.T) {
	s := NewShedder(ShedConfig{TargetP99: time.Millisecond, MaxInFlight: 8, MinInFlight: 8}, nil)
	var peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !s.TryAcquire() {
					continue
				}
				if in := s.InFlight(); in > peak.Load() {
					peak.Store(in)
				}
				s.Release(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 8 {
		t.Errorf("observed %d in flight, limit 8 breached", p)
	}
	if s.InFlight() != 0 {
		t.Errorf("inflight = %d after all released, want 0", s.InFlight())
	}
}

func TestShedStageRejectsWithErrShed(t *testing.T) {
	c := newClient(t, Config{Shed: ShedConfig{TargetP99: 50 * time.Millisecond, MaxInFlight: 1, MinInFlight: 1}})
	block := make(chan struct{})
	started := make(chan struct{})
	slow := service.Func{
		Meta: service.Info{Name: "slow", Category: "t"},
		Fn: func(ctx context.Context, _ service.Request) (service.Response, error) {
			close(started)
			<-block
			return service.Response{Body: []byte("ok")}, nil
		},
	}
	if err := c.Register(slow); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Invoke(context.Background(), "slow", service.Request{})
		done <- err
	}()
	<-started
	// The single slot is held: the second call must shed fast.
	_, err := c.Invoke(context.Background(), "slow", service.Request{})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("second call err = %v, want ErrShed", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("first call err = %v", err)
	}
	sh := c.Shedder()
	if sh == nil {
		t.Fatal("Shedder() = nil with shedding enabled")
	}
	if sh.Admitted() != 1 || sh.Rejected() != 1 {
		t.Errorf("admitted=%d rejected=%d, want 1/1", sh.Admitted(), sh.Rejected())
	}
}

func TestShedDisabledByDefault(t *testing.T) {
	c := newClient(t, Config{})
	if c.Shedder() != nil {
		t.Error("Shedder() should be nil when Config.Shed is zero")
	}
}
