// Package core implements the rich SDK itself — the paper's primary
// contribution. The Client ties the substrates together: a registry of
// services grouped by functionality, per-service monitoring (performance,
// availability, quality), score-based ranking and selection (Equations 1
// and 2), failure handling with per-service retry counts and ranked
// failover, response caching, client-side quotas, latency prediction from
// latency parameters, and synchronous, asynchronous (ListenableFuture
// style), and redundant invocation. An HTTP façade (httpapi.go) exposes the
// SDK to applications written in other languages.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/failover"
	"repro/internal/future"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/rank"
	"repro/internal/service"
)

// Errors returned by the client.
var (
	// ErrUnknownService is returned for invocations of unregistered
	// service names.
	ErrUnknownService = errors.New("core: unknown service")
	// ErrUnknownCategory is returned for category invocations with no
	// registered services.
	ErrUnknownCategory = errors.New("core: unknown category")
	// ErrClientQuota is returned when the SDK's client-side quota for a
	// service is exhausted (the remote call is not attempted).
	ErrClientQuota = errors.New("core: client-side quota exhausted")
)

// QualityFunc rates the quality of a service response; higher is better
// (paper §2: "users can provide methods to rate the quality of different
// services").
type QualityFunc func(req service.Request, resp service.Response) float64

// ParamsFunc extracts latency parameters from a request (paper §2: "latency
// parameters are provided by users"). The default extracts the argument
// size in bytes.
type ParamsFunc func(req service.Request) []float64

// Config configures a Client. The zero value is usable: real clock, a
// 4096-entry cache with no TTL, Equation 1 scoring with default weights,
// one retry for transient failures, and an 8-worker async pool.
type Config struct {
	// Clock is the SDK's timeline. Nil means the real clock.
	Clock clock.Clock
	// CacheSize bounds the response cache (entries). 0 means 4096.
	CacheSize int
	// CacheTTL expires cached responses. 0 means no expiry. The paper
	// notes cached values can become obsolete; a TTL bounds staleness.
	CacheTTL time.Duration
	// Scorer ranks services. Nil means Equation 1 with DefaultWeights.
	Scorer rank.Scorer
	// DefaultRetry applies to services registered without their own
	// policy. Zero means 2 attempts, no backoff.
	DefaultRetry failover.RetryPolicy
	// AsyncWorkers and AsyncQueue bound the thread pool used for
	// asynchronous invocation (paper §2.1: "thread pools of limited
	// size"). Zero means 8 workers, 256 queued tasks.
	AsyncWorkers int
	AsyncQueue   int
	// Predict configures latency predictors. The zero value uses the
	// predict package defaults with peer-average fallback.
	Predict predict.Config
}

func (c *Config) fill() {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.Scorer == nil {
		c.Scorer = rank.Weighted{W: rank.DefaultWeights}
	}
	if c.DefaultRetry.MaxAttempts == 0 {
		c.DefaultRetry = failover.RetryPolicy{MaxAttempts: 2}
	}
	if c.AsyncWorkers <= 0 {
		c.AsyncWorkers = 8
	}
	if c.AsyncQueue <= 0 {
		c.AsyncQueue = 256
	}
	if c.Predict.Policy == 0 {
		c.Predict.Policy = predict.DefaultPeerAverage
	}
}

// registration holds per-service configuration alongside the service.
type registration struct {
	svc       service.Service
	retry     *failover.RetryPolicy
	quality   QualityFunc
	params    ParamsFunc
	quota     *service.Quota
	cacheable bool
}

// Client is the rich SDK entry point. It is safe for concurrent use after
// all services are registered.
type Client struct {
	cfg      Config
	registry *service.Registry
	monitors *metrics.Registry
	memcache *cache.Memory[service.Response]
	flight   *cache.Group[service.Response]
	pool     *future.Pool

	mu         sync.Mutex
	regs       map[string]*registration
	predictors map[string]*predict.Predictor
}

// NewClient returns a Client with the given configuration.
func NewClient(cfg Config) (*Client, error) {
	cfg.fill()
	pool, err := future.NewPool(cfg.AsyncWorkers, cfg.AsyncQueue)
	if err != nil {
		return nil, fmt.Errorf("core: async pool: %w", err)
	}
	return &Client{
		cfg:      cfg,
		registry: service.NewRegistry(),
		monitors: metrics.NewRegistry(metrics.WithClock(cfg.Clock)),
		memcache: cache.NewMemory[service.Response](cfg.CacheSize, cache.WithTTL[service.Response](cfg.CacheTTL), cache.WithClock[service.Response](cfg.Clock)),
		flight:   cache.NewGroup[service.Response](),
		pool:     pool,
		regs:     make(map[string]*registration),
	}, nil
}

// Close releases the client's async pool, waiting for in-flight async
// invocations to finish.
func (c *Client) Close() { c.pool.Close() }

// RegisterOption customizes one service registration.
type RegisterOption func(*registration)

// WithRetry sets the service's retry policy (paper §2.1: the retry count
// "can be specified by the user and may be different for different
// services").
func WithRetry(p failover.RetryPolicy) RegisterOption {
	return func(r *registration) { r.retry = &p }
}

// WithQuality sets the user's quality-rating method for the service; it
// runs on every successful response and feeds the service's quality score.
func WithQuality(f QualityFunc) RegisterOption {
	return func(r *registration) { r.quality = f }
}

// WithLatencyParams sets the user's latency-parameter extractor for the
// service.
func WithLatencyParams(f ParamsFunc) RegisterOption {
	return func(r *registration) { r.params = f }
}

// WithClientQuota makes the SDK refuse invocations beyond the quota without
// calling the remote service, preserving a limited allowance.
func WithClientQuota(q *service.Quota) RegisterOption {
	return func(r *registration) { r.quota = q }
}

// WithCacheable marks the service's responses as cacheable. Caching "will
// not be applicable for all remote services" (paper §2) — storage writes,
// for example, must always reach the service — so it is opt-in per service.
func WithCacheable() RegisterOption {
	return func(r *registration) { r.cacheable = true }
}

// Register adds a service to the SDK.
func (c *Client) Register(svc service.Service, opts ...RegisterOption) error {
	if err := c.registry.Register(svc); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	reg := &registration{
		svc:    svc,
		params: func(req service.Request) []float64 { return []float64{float64(req.ArgSize())} },
	}
	for _, o := range opts {
		o(reg)
	}
	c.mu.Lock()
	c.regs[svc.Info().Name] = reg
	c.mu.Unlock()
	return nil
}

// MustRegister is Register that panics on error, for program setup code.
func (c *Client) MustRegister(svc service.Service, opts ...RegisterOption) {
	if err := c.Register(svc, opts...); err != nil {
		panic(err)
	}
}

func (c *Client) reg(name string) (*registration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regs[name]
	return r, ok
}

// Monitor returns the monitoring data collected for the named service.
func (c *Client) Monitor(name string) *metrics.Monitor { return c.monitors.Monitor(name) }

// Stats returns monitoring snapshots for every service that has been
// invoked, sorted by name.
func (c *Client) Stats() []metrics.Snapshot { return c.monitors.Snapshots() }

// Registry exposes the underlying service registry (read-only use).
func (c *Client) Registry() *service.Registry { return c.registry }

// InvokeOption customizes a single invocation.
type InvokeOption func(*invokeOpts)

type invokeOpts struct {
	noCache bool
	retry   *failover.RetryPolicy
}

// NoCache bypasses the response cache for this invocation.
func NoCache() InvokeOption { return func(o *invokeOpts) { o.noCache = true } }

// Retry overrides the retry policy for this invocation.
func Retry(p failover.RetryPolicy) InvokeOption {
	return func(o *invokeOpts) { o.retry = &p }
}

// Invoke synchronously calls the named service with monitoring, caching,
// client-side quota enforcement, and retries.
func (c *Client) Invoke(ctx context.Context, name string, req service.Request, opts ...InvokeOption) (service.Response, error) {
	var io invokeOpts
	for _, o := range opts {
		o(&io)
	}
	reg, ok := c.reg(name)
	if !ok {
		return service.Response{}, fmt.Errorf("%w: %s", ErrUnknownService, name)
	}
	useCache := reg.cacheable && !io.noCache
	key := "svc:" + name + ":" + req.CacheKey()
	if useCache {
		if resp, err := c.memcache.Get(key); err == nil {
			return resp, nil
		}
		resp, err, _ := c.flight.Do(key, func() (service.Response, error) {
			if resp, err := c.memcache.Get(key); err == nil {
				return resp, nil
			}
			resp, err := c.invokeOnce(ctx, reg, req, io.retry)
			if err != nil {
				return service.Response{}, err
			}
			c.memcache.Set(key, resp)
			return resp, nil
		})
		return resp, err
	}
	return c.invokeOnce(ctx, reg, req, io.retry)
}

// invokeOnce performs the monitored, retried call to one service.
func (c *Client) invokeOnce(ctx context.Context, reg *registration, req service.Request, retryOverride *failover.RetryPolicy) (service.Response, error) {
	if reg.quota != nil && !reg.quota.Take() {
		return service.Response{}, fmt.Errorf("%w: %s", ErrClientQuota, reg.svc.Info().Name)
	}
	policy := c.cfg.DefaultRetry
	if reg.retry != nil {
		policy = *reg.retry
	}
	if retryOverride != nil {
		policy = *retryOverride
	}
	name := reg.svc.Info().Name
	params := reg.params(req)
	start := c.cfg.Clock.Now()
	resp, _, err := failover.Invoke(ctx, c.cfg.Clock, reg.svc, req, policy)
	elapsed := c.cfg.Clock.Since(start)
	mon := c.monitors.Monitor(name)
	mon.Record(metrics.Observation{Latency: elapsed, Err: err, Params: params})
	if err != nil {
		return service.Response{}, err
	}
	if reg.quality != nil {
		mon.RecordQuality(reg.quality(req, resp))
	}
	c.mu.Lock()
	p := c.predictors[name]
	if p == nil {
		p = predict.New(c.cfg.Predict)
		if c.predictors == nil {
			c.predictors = make(map[string]*predict.Predictor)
		}
		c.predictors[name] = p
	}
	p.Observe(params, elapsed)
	c.mu.Unlock()
	return resp, nil
}

// InvokeAsync calls the named service on the SDK's bounded pool and returns
// a ListenableFuture-style future. Callbacks registered on the future run
// when the call completes (paper §2: asynchronous invocation with
// registered callbacks).
func (c *Client) InvokeAsync(ctx context.Context, name string, req service.Request, opts ...InvokeOption) *future.Future[service.Response] {
	return future.Submit(c.pool, func() (service.Response, error) {
		return c.Invoke(ctx, name, req, opts...)
	})
}

// PredictLatency predicts the latency of invoking the named service with
// the given latency parameters, using the service's recorded history and
// falling back to peer data from the same category per the configured
// default policy.
func (c *Client) PredictLatency(name string, params []float64) (time.Duration, error) {
	reg, ok := c.reg(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownService, name)
	}
	c.mu.Lock()
	p := c.predictors[name]
	c.mu.Unlock()
	if p == nil {
		p = predict.New(c.cfg.Predict)
	}
	peers := c.peerMeansMS(reg.svc.Info().Category, name)
	return p.Predict(params, peers)
}

// peerMeansMS returns mean latencies (ms) of other services in category.
func (c *Client) peerMeansMS(category, exclude string) []float64 {
	var peers []float64
	for _, svc := range c.registry.Category(category) {
		n := svc.Info().Name
		if n == exclude {
			continue
		}
		if m := c.monitors.Monitor(n); m.Count() > 0 {
			peers = append(peers, float64(m.MeanLatency())/float64(time.Millisecond))
		}
	}
	return peers
}

// Estimates builds ranking estimates for every service in category, for the
// given request: predicted response time from collected data, monetary cost
// from the service's cost model, and mean recorded quality.
func (c *Client) Estimates(category string, req service.Request) ([]rank.Estimate, error) {
	svcs := c.registry.Category(category)
	if len(svcs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCategory, category)
	}
	ests := make([]rank.Estimate, 0, len(svcs))
	for _, svc := range svcs {
		info := svc.Info()
		reg, _ := c.reg(info.Name)
		params := []float64{float64(req.ArgSize())}
		if reg != nil {
			params = reg.params(req)
		}
		var rtMS float64
		if d, err := c.PredictLatency(info.Name, params); err == nil {
			rtMS = float64(d) / float64(time.Millisecond)
		}
		quality, _ := c.monitors.Monitor(info.Name).MeanQuality()
		ests = append(ests, rank.Estimate{
			Name:           info.Name,
			ResponseTimeMS: rtMS,
			Cost:           info.Cost(req),
			Quality:        quality,
		})
	}
	return ests, nil
}

// Rank scores and ranks the services in category for the given request
// using the configured scorer, best first.
func (c *Client) Rank(category string, req service.Request) ([]rank.Scored, error) {
	ests, err := c.Estimates(category, req)
	if err != nil {
		return nil, err
	}
	return rank.Rank(ests, c.cfg.Scorer), nil
}

// Select returns the best-ranked service name in category for the request.
func (c *Client) Select(category string, req service.Request) (string, error) {
	ranked, err := c.Rank(category, req)
	if err != nil {
		return "", err
	}
	return ranked[0].Name, nil
}

// InvokeCategory invokes the best service in category, failing over to
// lower-ranked services (each with its registered retry policy) until one
// responds — the paper's ranked failover.
func (c *Client) InvokeCategory(ctx context.Context, category string, req service.Request, opts ...InvokeOption) (service.Response, []failover.Attempt, error) {
	var io invokeOpts
	for _, o := range opts {
		o(&io)
	}
	order, err := c.Rank(category, req)
	if err != nil {
		return service.Response{}, nil, err
	}
	// Category-level cache: any service's response satisfies the request.
	key := "cat:" + category + ":" + req.CacheKey()
	if !io.noCache {
		if resp, err := c.memcache.Get(key); err == nil {
			return resp, nil, nil
		}
	}
	steps := make([]failover.Step, 0, len(order))
	cacheable := false
	for _, s := range order {
		reg, ok := c.reg(s.Name)
		if !ok {
			continue
		}
		policy := c.cfg.DefaultRetry
		if reg.retry != nil {
			policy = *reg.retry
		}
		if io.retry != nil {
			policy = *io.retry
		}
		if reg.cacheable {
			cacheable = true
		}
		steps = append(steps, failover.Step{Service: c.monitored(reg), Policy: policy})
	}
	resp, attempts, err := failover.Chain(ctx, c.cfg.Clock, steps, req)
	if err != nil {
		return service.Response{}, attempts, err
	}
	if cacheable && !io.noCache {
		c.memcache.Set(key, resp)
	}
	return resp, attempts, nil
}

// InvokeCategoryAsync runs InvokeCategory on the SDK pool.
func (c *Client) InvokeCategoryAsync(ctx context.Context, category string, req service.Request, opts ...InvokeOption) *future.Future[service.Response] {
	return future.Submit(c.pool, func() (service.Response, error) {
		resp, _, err := c.InvokeCategory(ctx, category, req, opts...)
		return resp, err
	})
}

// InvokeAll redundantly invokes every service in category in parallel and
// returns all results in registry order — the paper's multi-service case
// for redundancy or for comparing and combining outputs.
func (c *Client) InvokeAll(ctx context.Context, category string, req service.Request) ([]failover.Result, error) {
	svcs := c.registry.Category(category)
	if len(svcs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCategory, category)
	}
	wrapped := make([]service.Service, len(svcs))
	for i, svc := range svcs {
		reg, _ := c.reg(svc.Info().Name)
		wrapped[i] = c.monitored(reg)
	}
	return failover.InvokeAll(ctx, c.cfg.Clock, wrapped, req), nil
}

// CacheStats returns the response cache's activity counters.
func (c *Client) CacheStats() cache.Stats { return c.memcache.Stats() }

// InvalidateCache drops every cached response (paper §2: "consistency
// issues may arise in which a cached value is obsolete").
func (c *Client) InvalidateCache() { c.memcache.Clear() }

// monitored wraps a registration as a Service that records metrics,
// quality, quota, and predictor observations on every invocation, so that
// failover chains and redundant invocation feed monitoring exactly like
// direct invocation.
func (c *Client) monitored(reg *registration) service.Service {
	return service.Func{
		Meta: reg.svc.Info(),
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			return c.invokeOnce(ctx, reg, req, &failover.RetryPolicy{MaxAttempts: 1})
		},
	}
}
