// Package core implements the rich SDK itself — the paper's primary
// contribution. The Client ties the substrates together behind a composable
// middleware pipeline (middleware.go, stages.go): a registry of services
// grouped by functionality, and a per-registration chain of stages covering
// response caching with single-flight de-duplication, circuit breaking,
// client-side quotas, predicted-latency deadlines, per-service monitoring
// (performance, availability, quality), latency prediction from latency
// parameters, and per-service retries. On top of the chain the Client
// offers score-based ranking and selection (Equations 1 and 2), ranked
// failover across a category, and synchronous, asynchronous
// (ListenableFuture style), and redundant invocation. Custom stages inject
// client-wide (Config.Middleware), per registration (WithMiddleware), or
// per invocation (WithInvokeMiddleware). An HTTP façade (httpapi.go)
// exposes the SDK to applications written in other languages.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/failover"
	"repro/internal/future"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/rank"
	"repro/internal/service"
	"repro/internal/trace"
)

// Errors returned by the client.
var (
	// ErrUnknownService is returned for invocations of unregistered
	// service names.
	ErrUnknownService = errors.New("core: unknown service")
	// ErrUnknownCategory is returned for category invocations with no
	// registered services.
	ErrUnknownCategory = errors.New("core: unknown category")
	// ErrClientQuota is returned when the SDK's client-side quota for a
	// service is exhausted (the remote call is not attempted).
	ErrClientQuota = errors.New("core: client-side quota exhausted")
)

// QualityFunc rates the quality of a service response; higher is better
// (paper §2: "users can provide methods to rate the quality of different
// services").
type QualityFunc func(req service.Request, resp service.Response) float64

// ParamsFunc extracts latency parameters from a request (paper §2: "latency
// parameters are provided by users"). The default extracts the argument
// size in bytes.
type ParamsFunc func(req service.Request) []float64

// Config configures a Client. The zero value is usable: real clock, a
// 4096-entry cache with no TTL, Equation 1 scoring with default weights,
// one retry for transient failures, an 8-worker async pool, and no circuit
// breaking or deadlines.
type Config struct {
	// Clock is the SDK's timeline. Nil means the real clock.
	Clock clock.Clock
	// CacheSize bounds the response cache (entries). 0 means 4096.
	CacheSize int
	// CacheTTL expires cached responses. 0 means no expiry. The paper
	// notes cached values can become obsolete; a TTL bounds staleness.
	CacheTTL time.Duration
	// CacheShards sets the response cache's shard count (rounded up to a
	// power of two, capped at CacheSize). 0 picks a default sized to the
	// machine's parallelism. Concurrent cache hits for different keys
	// contend per shard instead of on one global mutex.
	CacheShards int
	// CacheTTLJitter spreads each cached response's effective TTL over
	// [TTL·(1-j), TTL·(1+j)], de-synchronizing expiry stampedes. 0
	// disables jitter; values are clamped to [0, 1].
	CacheTTLJitter float64
	// CacheJanitor runs a background sweep reclaiming expired cache
	// entries every interval (on Clock), so they stop pinning memory
	// until capacity eviction. 0 disables the janitor; Close stops it.
	CacheJanitor time.Duration
	// Scorer ranks services. Nil means Equation 1 with DefaultWeights.
	Scorer rank.Scorer
	// DefaultRetry applies to services registered without their own
	// policy. Zero means 2 attempts, no backoff.
	DefaultRetry failover.RetryPolicy
	// AsyncWorkers and AsyncQueue bound the thread pool used for
	// asynchronous invocation (paper §2.1: "thread pools of limited
	// size").  Zero means 8 workers, 256 queued tasks.
	AsyncWorkers int
	AsyncQueue   int
	// Predict configures latency predictors. The zero value uses the
	// predict package defaults with peer-average fallback.
	Predict predict.Config
	// Breaker enables per-service circuit breakers (BreakerStage) when
	// Threshold > 0.
	Breaker BreakerConfig
	// Deadline enables predicted-latency deadlines (DeadlineStage) when
	// Factor > 0.
	Deadline DeadlineConfig
	// Shed enables adaptive admission control (ShedStage) when TargetP99
	// > 0: over-limit calls fail fast with ErrShed instead of queueing
	// the facade into collapse.
	Shed ShedConfig
	// Tracer enables distributed-style tracing of invocations: a root span
	// per call (TraceStage) with one child span per middleware stage. Nil
	// disables tracing; a tracer with SampleRate 0 is treated as disabled.
	Tracer *trace.Tracer
	// Middleware is injected outermost into every registration's chain,
	// in order. Use it for client-wide concerns such as logging or
	// tracing.
	Middleware []Middleware
}

func (c *Config) fill() {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.Scorer == nil {
		c.Scorer = rank.Weighted{W: rank.DefaultWeights}
	}
	if c.DefaultRetry.MaxAttempts == 0 {
		c.DefaultRetry = failover.RetryPolicy{MaxAttempts: 2}
	}
	if c.AsyncWorkers <= 0 {
		c.AsyncWorkers = 8
	}
	if c.AsyncQueue <= 0 {
		c.AsyncQueue = 256
	}
	if c.Predict.Policy == 0 {
		c.Predict.Policy = predict.DefaultPeerAverage
	}
	c.Breaker.fill()
	c.Deadline.fill()
}

// registration holds per-service configuration alongside the service, plus
// the middleware chain composed for it at registration time.
type registration struct {
	name        string // svc.Info().Name, cached off the hot path
	cachePrefix string // "svc:<name>:", precomputed for CacheStage
	spanName    string // "invoke <name>", precomputed for TraceStage
	svc         service.Service
	retry       *failover.RetryPolicy
	policy      failover.RetryPolicy // retry resolved against the client default
	quality     QualityFunc
	params      ParamsFunc
	quota       *service.Quota
	cacheable   bool
	mw          []Middleware

	invoke Invoker // the composed stage chain
}

// Client is the rich SDK entry point. It is safe for concurrent use after
// all services are registered.
type Client struct {
	cfg        Config
	registry   *service.Registry
	monitors   *metrics.Registry
	memcache   *cache.Sharded[service.Response]
	flight     *cache.Group[service.Response]
	pool       *future.Pool
	predictors *PredictorSet
	breakers   *BreakerSet // nil when Config.Breaker is disabled
	shedder    *Shedder    // nil when Config.Shed is disabled

	// regs is a copy-on-write snapshot: Register rebuilds it under mu,
	// invocations read it with a single atomic load and no lock.
	regs atomic.Pointer[map[string]*registration]
	mu   sync.Mutex
}

// NewClient returns a Client with the given configuration.
func NewClient(cfg Config) (*Client, error) {
	cfg.fill()
	pool, err := future.NewPool(cfg.AsyncWorkers, cfg.AsyncQueue)
	if err != nil {
		return nil, fmt.Errorf("core: async pool: %w", err)
	}
	c := &Client{
		cfg:      cfg,
		registry: service.NewRegistry(),
		monitors: metrics.NewRegistry(metrics.WithClock(cfg.Clock)),
		memcache: cache.NewSharded[service.Response](cfg.CacheSize,
			cache.WithTTL(cfg.CacheTTL),
			cache.WithClock(cfg.Clock),
			cache.WithShards(cfg.CacheShards),
			cache.WithTTLJitter(cfg.CacheTTLJitter),
			cache.WithJanitor(cfg.CacheJanitor)),
		flight:     cache.NewGroup[service.Response](),
		pool:       pool,
		predictors: NewPredictorSet(cfg.Predict),
	}
	empty := make(map[string]*registration)
	c.regs.Store(&empty)
	if cfg.Breaker.Threshold > 0 {
		c.breakers = NewBreakerSet(cfg.Breaker, cfg.Clock)
	}
	if cfg.Shed.TargetP99 > 0 {
		c.shedder = NewShedder(cfg.Shed, cfg.Clock)
	}
	return c, nil
}

// Shedder exposes the client's adaptive admission controller for metrics
// exposition and experiments; nil when shedding is disabled.
func (c *Client) Shedder() *Shedder { return c.shedder }

// Close releases the client's async pool — waiting for in-flight async
// invocations to finish — and stops the cache janitor, if configured.
func (c *Client) Close() {
	c.pool.Close()
	c.memcache.Close()
}

// RegisterOption customizes one service registration.
type RegisterOption func(*registration)

// WithRetry sets the service's retry policy (paper §2.1: the retry count
// "can be specified by the user and may be different for different
// services").
func WithRetry(p failover.RetryPolicy) RegisterOption {
	return func(r *registration) { r.retry = &p }
}

// WithQuality sets the user's quality-rating method for the service; it
// runs on every successful response and feeds the service's quality score.
func WithQuality(f QualityFunc) RegisterOption {
	return func(r *registration) { r.quality = f }
}

// WithLatencyParams sets the user's latency-parameter extractor for the
// service.
func WithLatencyParams(f ParamsFunc) RegisterOption {
	return func(r *registration) { r.params = f }
}

// WithClientQuota makes the SDK refuse invocations beyond the quota without
// calling the remote service, preserving a limited allowance.
func WithClientQuota(q *service.Quota) RegisterOption {
	return func(r *registration) { r.quota = q }
}

// WithCacheable marks the service's responses as cacheable. Caching "will
// not be applicable for all remote services" (paper §2) — storage writes,
// for example, must always reach the service — so it is opt-in per service.
func WithCacheable() RegisterOption {
	return func(r *registration) { r.cacheable = true }
}

// WithMiddleware injects mw into this registration's chain, outside the
// built-in stages (so it observes every call, cache hits included) and
// inside any client-wide Config.Middleware.
func WithMiddleware(mw ...Middleware) RegisterOption {
	return func(r *registration) { r.mw = append(r.mw, mw...) }
}

// Register adds a service to the SDK and composes its middleware chain.
func (c *Client) Register(svc service.Service, opts ...RegisterOption) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.registry.Register(svc); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	reg := &registration{
		name:   svc.Info().Name,
		svc:    svc,
		params: func(req service.Request) []float64 { return []float64{float64(req.ArgSize())} },
	}
	reg.cachePrefix = "svc:" + reg.name + ":"
	reg.spanName = "invoke " + reg.name
	for _, o := range opts {
		o(reg)
	}
	reg.policy = c.cfg.DefaultRetry
	if reg.retry != nil {
		reg.policy = *reg.retry
	}
	reg.invoke = Compose(transport(), c.stages(reg)...)
	old := *c.regs.Load()
	next := make(map[string]*registration, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[reg.name] = reg
	c.regs.Store(&next)
	return nil
}

// stages assembles the registration's chain, outermost first. See the
// package-level order documented in stages.go.
func (c *Client) stages(reg *registration) []Middleware {
	mw := make([]Middleware, 0, len(c.cfg.Middleware)+len(reg.mw)+8)
	if c.cfg.Tracer.Enabled() {
		// Outermost of all, so the root span covers custom middleware too
		// and Call.Span is live for it.
		mw = append(mw, TraceStage(c.cfg.Tracer))
	}
	mw = append(mw, c.cfg.Middleware...)
	mw = append(mw, reg.mw...)
	mw = append(mw, CacheStage(c.memcache, c.flight))
	if c.breakers != nil {
		mw = append(mw, BreakerStage(c.breakers))
	}
	if c.shedder != nil {
		// After the breaker on purpose: see ShedStage.
		mw = append(mw, ShedStage(c.shedder))
	}
	mw = append(mw, QuotaStage())
	if c.cfg.Deadline.Factor > 0 {
		mw = append(mw, DeadlineStage(c.PredictLatency, c.cfg.Deadline))
	}
	mw = append(mw,
		MonitorStage(c.monitors),
		PredictStage(c.predictors),
		RetryStage(c.cfg.Clock),
	)
	return mw
}

// MustRegister is Register that panics on error, for program setup code.
func (c *Client) MustRegister(svc service.Service, opts ...RegisterOption) {
	if err := c.Register(svc, opts...); err != nil {
		panic(err)
	}
}

func (c *Client) reg(name string) (*registration, bool) {
	r, ok := (*c.regs.Load())[name]
	return r, ok
}

// Tracer returns the client's tracer, nil when tracing is not configured.
// The nil tracer is safe to use: every method is inert.
func (c *Client) Tracer() *trace.Tracer { return c.cfg.Tracer }

// Monitor returns the monitoring data collected for the named service.
func (c *Client) Monitor(name string) *metrics.Monitor { return c.monitors.Monitor(name) }

// Stats returns monitoring snapshots for every service that has been
// invoked, sorted by name.
func (c *Client) Stats() []metrics.Snapshot { return c.monitors.Snapshots() }

// Registry exposes the underlying service registry (read-only use).
func (c *Client) Registry() *service.Registry { return c.registry }

// BreakerStates summarizes the circuit breakers of every service the
// client has invoked. It is empty when Config.Breaker is disabled.
func (c *Client) BreakerStates() []BreakerState {
	if c.breakers == nil {
		return nil
	}
	return c.breakers.States()
}

// InvokeOption customizes a single invocation.
type InvokeOption func(*invokeOpts)

type invokeOpts struct {
	noCache bool
	retry   *failover.RetryPolicy
	mw      []Middleware
}

// NoCache bypasses the response cache for this invocation.
func NoCache() InvokeOption { return func(o *invokeOpts) { o.noCache = true } }

// parseInvokeOpts applies opts to a fresh invokeOpts. Callers guard it with
// len(opts) > 0: handing &io to a dynamic option function forces io onto
// the heap, and the split keeps the zero-option fast path allocation-free.
func parseInvokeOpts(opts []InvokeOption) invokeOpts {
	var io invokeOpts
	for _, o := range opts {
		o(&io)
	}
	return io
}

// Retry overrides the retry policy for this invocation.
func Retry(p failover.RetryPolicy) InvokeOption {
	return func(o *invokeOpts) { o.retry = &p }
}

// WithInvokeMiddleware injects mw outermost around this invocation's chain
// (for category invocation, around each attempted service's chain).
func WithInvokeMiddleware(mw ...Middleware) InvokeOption {
	return func(o *invokeOpts) { o.mw = append(o.mw, mw...) }
}

// fillCall populates the Call a registration's chain will execute,
// resolving the effective retry policy (client default < registration <
// invocation). It writes every Call field, so a recycled Call needs no
// prior reset.
func (c *Client) fillCall(call *Call, reg *registration, req *service.Request, io invokeOpts) {
	call.Req = *req
	call.NoCache = io.noCache
	call.Attempts = 0
	call.Elapsed = 0
	call.reg = reg
	call.retryOverride = io.retry
	call.params = nil
	call.span = trace.Span{}
}

// callPool recycles Call values so the cache-hit fast path does not pay a
// heap allocation per invocation. Calls are valid only until the chain
// returns (see Call).
var callPool = sync.Pool{New: func() any { return new(Call) }}

// run sends one call through the registration's composed chain, wrapping
// any per-invocation middleware around it. req is a pointer purely to
// avoid copying the request an extra time on the hot path; it is copied
// into the Call, never retained. io travels by value so the options never
// escape to the heap.
func (c *Client) run(ctx context.Context, reg *registration, req *service.Request, io invokeOpts) (service.Response, error) {
	inv := reg.invoke
	if len(io.mw) > 0 {
		inv = Compose(inv, io.mw...)
	}
	call := callPool.Get().(*Call)
	c.fillCall(call, reg, req, io)
	resp, err := inv(ctx, call)
	// A parked Call keeps its last request until reuse overwrites it or the
	// next GC cycle releases the pool entry; both bound the retention, so no
	// per-call reset is needed (fillCall rewrites every field on reuse).
	callPool.Put(call)
	return resp, err
}

// Invoke synchronously calls the named service through its middleware
// chain: caching, circuit breaking, quota enforcement, deadlines,
// monitoring, latency observation, and retries are all stages of the
// composed pipeline.
func (c *Client) Invoke(ctx context.Context, name string, req service.Request, opts ...InvokeOption) (service.Response, error) {
	var io invokeOpts
	if len(opts) > 0 {
		io = parseInvokeOpts(opts)
	}
	reg, ok := c.reg(name)
	if !ok {
		return service.Response{}, fmt.Errorf("%w: %s", ErrUnknownService, name)
	}
	return c.run(ctx, reg, &req, io)
}

// InvokeAsync calls the named service on the SDK's bounded pool and returns
// a ListenableFuture-style future. Callbacks registered on the future run
// when the call completes (paper §2: asynchronous invocation with
// registered callbacks). When the pool is saturated or closed the future
// fails immediately — with future.ErrPoolSaturated or future.ErrPoolClosed
// — instead of blocking the caller.
func (c *Client) InvokeAsync(ctx context.Context, name string, req service.Request, opts ...InvokeOption) *future.Future[service.Response] {
	return future.TrySubmit(c.pool, func() (service.Response, error) {
		return c.Invoke(ctx, name, req, opts...)
	})
}

// PredictLatency predicts the latency of invoking the named service with
// the given latency parameters, using the service's recorded history and
// falling back to peer data from the same category per the configured
// default policy.
func (c *Client) PredictLatency(name string, params []float64) (time.Duration, error) {
	reg, ok := c.reg(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownService, name)
	}
	peers := c.peerMeansMS(reg.svc.Info().Category, name)
	return c.predictors.Predict(name, params, peers)
}

// peerMeansMS returns mean latencies (ms) of other services in category.
func (c *Client) peerMeansMS(category, exclude string) []float64 {
	var peers []float64
	for _, svc := range c.registry.Category(category) {
		n := svc.Info().Name
		if n == exclude {
			continue
		}
		if m := c.monitors.Monitor(n); m.Count() > 0 {
			peers = append(peers, float64(m.MeanLatency())/float64(time.Millisecond))
		}
	}
	return peers
}

// Estimates builds ranking estimates for every service in category, for the
// given request: predicted response time from collected data, monetary cost
// from the service's cost model, and mean recorded quality.
func (c *Client) Estimates(category string, req service.Request) ([]rank.Estimate, error) {
	svcs := c.registry.Category(category)
	if len(svcs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCategory, category)
	}
	ests := make([]rank.Estimate, 0, len(svcs))
	for _, svc := range svcs {
		info := svc.Info()
		reg, _ := c.reg(info.Name)
		params := []float64{float64(req.ArgSize())}
		if reg != nil {
			params = reg.params(req)
		}
		var rtMS float64
		if d, err := c.PredictLatency(info.Name, params); err == nil {
			rtMS = float64(d) / float64(time.Millisecond)
		}
		quality, _ := c.monitors.Monitor(info.Name).MeanQuality()
		ests = append(ests, rank.Estimate{
			Name:           info.Name,
			ResponseTimeMS: rtMS,
			Cost:           info.Cost(req),
			Quality:        quality,
		})
	}
	return ests, nil
}

// Rank scores and ranks the services in category for the given request
// using the configured scorer, best first. Services whose circuit breaker
// is open are demoted below every closed-breaker service (stable within
// each group): observed unavailability feeds back into selection, so
// failover chains try healthy services first.
func (c *Client) Rank(category string, req service.Request) ([]rank.Scored, error) {
	ests, err := c.Estimates(category, req)
	if err != nil {
		return nil, err
	}
	ranked := rank.Rank(ests, c.cfg.Scorer)
	if c.breakers != nil {
		sort.SliceStable(ranked, func(i, j int) bool {
			return !c.breakers.Tripped(ranked[i].Name) && c.breakers.Tripped(ranked[j].Name)
		})
	}
	return ranked, nil
}

// Select returns the best-ranked service name in category for the request.
func (c *Client) Select(category string, req service.Request) (string, error) {
	ranked, err := c.Rank(category, req)
	if err != nil {
		return "", err
	}
	return ranked[0].Name, nil
}

// InvokeCategory invokes the best service in category, failing over to
// lower-ranked services (each with its registered retry policy) until one
// responds — the paper's ranked failover. Each attempted service runs
// through its full middleware chain (minus the per-service cache, replaced
// by the category-level cache here), so monitoring, breakers, quotas, and
// deadlines all apply per attempt.
func (c *Client) InvokeCategory(ctx context.Context, category string, req service.Request, opts ...InvokeOption) (service.Response, []failover.Attempt, error) {
	var io invokeOpts
	if len(opts) > 0 {
		io = parseInvokeOpts(opts)
	}
	order, err := c.Rank(category, req)
	if err != nil {
		return service.Response{}, nil, err
	}
	// Category-level cache: any service's response satisfies the request.
	key := "cat:" + category + ":" + req.CacheKey()
	if !io.noCache {
		if resp, err := c.memcache.Get(key); err == nil {
			return resp, nil, nil
		}
	}
	steps := make([]failover.Step, 0, len(order))
	cacheable := false
	for _, s := range order {
		reg, ok := c.reg(s.Name)
		if !ok {
			continue
		}
		policy := c.cfg.DefaultRetry
		if reg.retry != nil {
			policy = *reg.retry
		}
		if io.retry != nil {
			policy = *io.retry
		}
		if reg.cacheable {
			cacheable = true
		}
		steps = append(steps, failover.Step{Service: c.stepService(reg, &io), Policy: policy})
	}
	resp, attempts, err := failover.Chain(ctx, c.cfg.Clock, steps, req)
	if err != nil {
		return service.Response{}, attempts, err
	}
	if cacheable && !io.noCache {
		c.memcache.Set(key, resp)
	}
	return resp, attempts, nil
}

// InvokeCategoryAsync runs InvokeCategory on the SDK pool. Pool saturation
// surfaces through the returned future as future.ErrPoolSaturated.
func (c *Client) InvokeCategoryAsync(ctx context.Context, category string, req service.Request, opts ...InvokeOption) *future.Future[service.Response] {
	return future.TrySubmit(c.pool, func() (service.Response, error) {
		resp, _, err := c.InvokeCategory(ctx, category, req, opts...)
		return resp, err
	})
}

// InvokeAll redundantly invokes every service in category in parallel and
// returns all results in registry order — the paper's multi-service case
// for redundancy or for comparing and combining outputs. Every invocation
// runs through its service's middleware chain.
func (c *Client) InvokeAll(ctx context.Context, category string, req service.Request) ([]failover.Result, error) {
	svcs := c.registry.Category(category)
	if len(svcs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCategory, category)
	}
	var io invokeOpts
	wrapped := make([]service.Service, len(svcs))
	for i, svc := range svcs {
		reg, _ := c.reg(svc.Info().Name)
		wrapped[i] = c.stepService(reg, &io)
	}
	return failover.InvokeAll(ctx, c.cfg.Clock, wrapped, req), nil
}

// CacheStats returns the response cache's activity counters, merged
// across shards.
func (c *Client) CacheStats() cache.Stats { return c.memcache.Stats() }

// CacheShardStats returns each cache shard's counters in shard order, for
// per-shard gauges and balance diagnostics.
func (c *Client) CacheShardStats() []cache.Stats { return c.memcache.ShardStats() }

// InvalidateCache drops every cached response (paper §2: "consistency
// issues may arise in which a cached value is obsolete").
func (c *Client) InvalidateCache() { c.memcache.Clear() }

// stepService adapts a registration's chain to a service.Service for
// failover chains and redundant invocation: each attempt is a single pass
// through the pipeline (retries belong to the chain's step policy), with
// the per-service cache skipped so the category-level cache governs.
func (c *Client) stepService(reg *registration, io *invokeOpts) service.Service {
	return service.Func{
		Meta: reg.svc.Info(),
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			step := invokeOpts{
				noCache: true,
				retry:   &failover.RetryPolicy{MaxAttempts: 1},
				mw:      io.mw,
			}
			return c.run(ctx, reg, &req, step)
		},
	}
}
