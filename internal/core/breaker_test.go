package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/failover"
	"repro/internal/service"
	"repro/internal/simsvc"
)

func transientErr() error { return fmt.Errorf("down: %w", service.ErrUnavailable) }

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute}, clk)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(transientErr())
	}
	if !b.Tripped() {
		t.Fatal("breaker should be open after 3 consecutive transient failures")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute}, clk)
	for round := 0; round < 4; round++ {
		b.Record(transientErr())
		b.Record(transientErr())
		b.Record(nil) // success before the threshold
	}
	if b.Tripped() {
		t.Fatal("breaker tripped despite successes resetting the streak")
	}
}

func TestBreakerPermanentErrorsDoNotTrip(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, clk)
	for i := 0; i < 5; i++ {
		b.Record(fmt.Errorf("bad: %w", service.ErrBadRequest))
	}
	if b.Tripped() {
		t.Fatal("permanent errors must not trip the breaker: the service is responsive")
	}
}

func TestBreakerDeadlineCountsAsTransient(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, clk)
	b.Record(fmt.Errorf("slow: %w", ErrDeadline))
	b.Record(fmt.Errorf("slow: %w", ErrDeadline))
	if !b.Tripped() {
		t.Fatal("deadline failures must count toward the threshold")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute}, clk)
	b.Record(transientErr())
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	clk.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: breaker should admit one probe")
	}
	if b.Allow() {
		t.Fatal("only one half-open probe may proceed")
	}
	// Failed probe re-opens for a fresh cooldown.
	b.Record(transientErr())
	clk.Advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("failed probe must restart the cooldown")
	}
	clk.Advance(30 * time.Second)
	if !b.Allow() {
		t.Fatal("fresh cooldown elapsed: probe expected")
	}
	// Successful probe closes the breaker.
	b.Record(nil)
	if b.Tripped() || !b.Allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

// TestBreakerStageEndToEnd drives the breaker through the client against a
// scripted simsvc outage: consecutive failures trip it, tripped calls are
// refused without reaching the service, and recovery closes it again.
func TestBreakerStageEndToEnd(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := newClient(t, Config{
		Clock:        clk,
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 1},
	})
	svc := simsvc.New(simsvc.Config{
		Info:  service.Info{Name: "flaky", Category: "nlu"},
		Clock: clk,
	})
	c.MustRegister(svc)

	if _, err := c.Invoke(context.Background(), "flaky", service.Request{Text: "ok"}); err != nil {
		t.Fatal(err)
	}

	svc.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "flaky", service.Request{Text: "x"}); !errors.Is(err, service.ErrUnavailable) {
			t.Fatalf("invoke %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	before := svc.Invocations()
	_, err := c.Invoke(context.Background(), "flaky", service.Request{Text: "x"})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if errors.Is(err, service.ErrUnavailable) {
		t.Error("ErrBreakerOpen must not match ErrUnavailable (retries would spin)")
	}
	if svc.Invocations() != before {
		t.Error("open breaker still reached the service")
	}

	states := c.BreakerStates()
	if len(states) != 1 || states[0].Service != "flaky" || states[0].State != "open" {
		t.Errorf("BreakerStates = %+v, want flaky open", states)
	}

	// Service recovers; after the cooldown one probe closes the breaker.
	svc.SetDown(false)
	clk.Advance(time.Minute)
	if _, err := c.Invoke(context.Background(), "flaky", service.Request{Text: "probe"}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Invoke(context.Background(), "flaky", service.Request{Text: "after"}); err != nil {
		t.Fatalf("closed breaker refused call: %v", err)
	}
}

// TestBreakerRetriesWithinOneInvokeCountOnce checks the stage order: the
// breaker wraps outside RetryStage, so an invocation that retries N times
// records one outcome, not N.
func TestBreakerRetriesWithinOneInvokeCountOnce(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := newClient(t, Config{
		Clock:        clk,
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 3},
	})
	svc := simsvc.New(simsvc.Config{
		Info:  service.Info{Name: "flaky", Category: "nlu"},
		Clock: clk,
		Down:  true,
	})
	c.MustRegister(svc)
	// One Invoke = three transport attempts = one breaker outcome.
	if _, err := c.Invoke(context.Background(), "flaky", service.Request{Text: "x"}); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if c.breakers.Tripped("flaky") {
		t.Fatal("breaker tripped after one invocation; retries must not count individually")
	}
	if got := svc.Invocations(); got != 3 {
		t.Fatalf("transport attempts = %d, want 3", got)
	}
}

func TestRankDemotesTrippedServices(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := newClient(t, Config{
		Clock:        clk,
		Breaker:      BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 1},
	})
	a := simsvc.New(simsvc.Config{Info: service.Info{Name: "a", Category: "nlu"}, Clock: clk})
	b := simsvc.New(simsvc.Config{Info: service.Info{Name: "b", Category: "nlu"}, Clock: clk})
	c.MustRegister(a)
	c.MustRegister(b)

	ranked, err := c.Rank("nlu", service.Request{Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Name != "a" {
		t.Fatalf("baseline rank = %v, want a first", ranked)
	}

	a.SetDown(true)
	if _, err := c.Invoke(context.Background(), "a", service.Request{Text: "x"}); err == nil {
		t.Fatal("want failure to trip a's breaker")
	}
	ranked, err = c.Rank("nlu", service.Request{Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Name != "b" || ranked[1].Name != "a" {
		t.Errorf("rank after trip = [%s %s], want tripped service a demoted last", ranked[0].Name, ranked[1].Name)
	}

	// Category failover therefore tries the healthy service first.
	resp, attempts, err := c.InvokeCategory(context.Background(), "nlu", service.Request{Text: "y"})
	if err != nil {
		t.Fatal(err)
	}
	_ = resp
	if len(attempts) != 1 || attempts[0].Service != "b" {
		t.Errorf("attempts = %+v, want single attempt against b", attempts)
	}
}
