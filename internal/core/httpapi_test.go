package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/service"
)

func newAPIServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	c, err := NewClient(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	echo := service.Func{
		Meta: service.Info{Name: "echo", Category: "nlu", CostPerCall: 0.5},
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			return service.Response{Body: []byte("echo:" + req.Text), ContentType: "text/plain"}, nil
		},
	}
	if err := c.Register(echo, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(c))
	t.Cleanup(srv.Close)
	return srv, c
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAPIInvoke(t *testing.T) {
	srv, _ := newAPIServer(t)
	resp := postJSON(t, srv.URL+"/v1/invoke", invokeBody{
		Service: "echo",
		Request: service.Request{Op: "analyze", Text: "hello"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out service.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if string(out.Body) != "echo:hello" {
		t.Errorf("Body = %q", out.Body)
	}
}

func TestAPIInvokeUnknownService404(t *testing.T) {
	srv, _ := newAPIServer(t)
	resp := postJSON(t, srv.URL+"/v1/invoke", invokeBody{Service: "ghost"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestAPIInvokeCategory(t *testing.T) {
	srv, _ := newAPIServer(t)
	resp := postJSON(t, srv.URL+"/v1/invoke-category", invokeBody{
		Category: "nlu",
		Request:  service.Request{Text: "doc"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Response service.Response `json:"response"`
		Attempts []struct {
			Service string `json:"service"`
		} `json:"attempts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if string(out.Response.Body) != "echo:doc" || len(out.Attempts) != 1 {
		t.Errorf("out = %+v", out)
	}
}

func TestAPIInvokeAll(t *testing.T) {
	srv, _ := newAPIServer(t)
	resp := postJSON(t, srv.URL+"/v1/invoke-all", invokeBody{
		Category: "nlu",
		Request:  service.Request{Text: "x"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Service string `json:"service"`
			Error   string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Service != "echo" || out.Results[0].Error != "" {
		t.Errorf("out = %+v", out)
	}
}

func TestAPIRank(t *testing.T) {
	srv, _ := newAPIServer(t)
	resp := postJSON(t, srv.URL+"/v1/rank", invokeBody{Category: "nlu"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Ranked []struct {
			Name  string  `json:"Name"`
			Score float64 `json:"Score"`
		} `json:"ranked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ranked) != 1 || out.Ranked[0].Name != "echo" {
		t.Errorf("out = %+v", out)
	}
}

func TestAPIServicesAndStats(t *testing.T) {
	srv, _ := newAPIServer(t)
	for _, path := range []string{"/v1/services", "/v1/stats", "/v1/cache/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestAPICacheInvalidate(t *testing.T) {
	srv, c := newAPIServer(t)
	// Prime the cache through the API.
	r1 := postJSON(t, srv.URL+"/v1/invoke", invokeBody{Service: "echo", Request: service.Request{Text: "q"}})
	r1.Body.Close()
	if c.CacheStats().Size == 0 {
		t.Fatal("cache not primed")
	}
	resp := postJSON(t, srv.URL+"/v1/cache/invalidate", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("status = %d, want 204", resp.StatusCode)
	}
	if c.CacheStats().Size != 0 {
		t.Error("cache not cleared")
	}
}

func TestAPIBadJSON(t *testing.T) {
	srv, _ := newAPIServer(t)
	resp, err := http.Post(srv.URL+"/v1/invoke", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestAPICrossLanguageShape(t *testing.T) {
	// The façade exists for non-Go clients: verify plain-JSON in/out with
	// no Go-specific types leaking.
	srv, _ := newAPIServer(t)
	raw := `{"service":"echo","request":{"op":"analyze","text":"plain json"}}`
	resp, err := http.Post(srv.URL+"/v1/invoke", "application/json", bytes.NewReader([]byte(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var generic map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&generic); err != nil {
		t.Fatal(err)
	}
	if _, ok := generic["body"]; !ok {
		t.Errorf("response missing body field: %v", generic)
	}
}

func ExampleNewAPI() {
	client, err := NewClient(Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()
	_ = client.Register(service.Func{
		Meta: service.Info{Name: "hello", Category: "demo"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			return service.Response{Body: []byte("hi")}, nil
		},
	})
	api := NewAPI(client)
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/invoke", "application/json",
		bytes.NewReader([]byte(`{"service":"hello","request":{}}`)))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var out service.Response
	_ = json.NewDecoder(resp.Body).Decode(&out)
	fmt.Println(string(out.Body))
	// Output: hi
}
