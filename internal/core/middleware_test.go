package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/service"
)

// tagMW returns a middleware that appends tag to order around the call.
func tagMW(order *[]string, tag string) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			*order = append(*order, tag+">")
			resp, err := next(ctx, call)
			*order = append(*order, "<"+tag)
			return resp, err
		}
	}
}

func TestComposeOrder(t *testing.T) {
	var order []string
	base := Invoker(func(ctx context.Context, call *Call) (service.Response, error) {
		order = append(order, "base")
		return service.Response{}, nil
	})
	inv := Compose(base, tagMW(&order, "a"), tagMW(&order, "b"))
	if _, err := inv(context.Background(), &Call{}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a>", "b>", "base", "<b", "<a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestComposeEmptyIsBase(t *testing.T) {
	called := false
	base := Invoker(func(ctx context.Context, call *Call) (service.Response, error) {
		called = true
		return service.Response{}, nil
	})
	if _, err := Compose(base)(context.Background(), &Call{}); err != nil || !called {
		t.Fatalf("called = %v, err = %v", called, err)
	}
}

func countMW(n *atomic.Int32) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			n.Add(1)
			return next(ctx, call)
		}
	}
}

func TestClientWideMiddlewareSeesEveryService(t *testing.T) {
	var seen atomic.Int32
	c := newClient(t, Config{Middleware: []Middleware{countMW(&seen)}})
	s1, _ := countingService("s1", "nlu", nil)
	s2, _ := countingService("s2", "nlu", nil)
	c.MustRegister(s1)
	c.MustRegister(s2)
	for _, name := range []string{"s1", "s2", "s1"} {
		if _, err := c.Invoke(context.Background(), name, service.Request{Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if seen.Load() != 3 {
		t.Errorf("client-wide middleware saw %d calls, want 3", seen.Load())
	}
}

func TestRegistrationMiddlewareIsPerService(t *testing.T) {
	var seen atomic.Int32
	c := newClient(t, Config{})
	s1, _ := countingService("s1", "nlu", nil)
	s2, _ := countingService("s2", "nlu", nil)
	c.MustRegister(s1, WithMiddleware(countMW(&seen)))
	c.MustRegister(s2)
	for i := 0; i < 2; i++ {
		if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "x"}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(context.Background(), "s2", service.Request{Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if seen.Load() != 2 {
		t.Errorf("registration middleware saw %d calls, want 2 (s1 only)", seen.Load())
	}
}

func TestInvokeMiddlewareIsPerInvocation(t *testing.T) {
	var seen atomic.Int32
	c := newClient(t, Config{})
	svc, _ := countingService("s1", "nlu", nil)
	c.MustRegister(svc)
	if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "x"},
		WithInvokeMiddleware(countMW(&seen))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 1 {
		t.Errorf("invoke middleware saw %d calls, want 1", seen.Load())
	}
}

func TestMiddlewareObservesCacheHits(t *testing.T) {
	var seen atomic.Int32
	c := newClient(t, Config{})
	svc, calls := countingService("cached", "nlu", nil)
	c.MustRegister(svc, WithCacheable(), WithMiddleware(countMW(&seen)))
	req := service.Request{Op: "analyze", Text: "same"}
	for i := 0; i < 10; i++ {
		if _, err := c.Invoke(context.Background(), "cached", req); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Errorf("backend calls = %d, want 1 (cache)", got)
	}
	if seen.Load() != 10 {
		t.Errorf("middleware saw %d calls, want all 10 including cache hits", seen.Load())
	}
}

func TestMiddlewareShortCircuitSkipsEverything(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("s1", "nlu", nil)
	canned := Middleware(func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			return service.Response{Body: []byte("canned")}, nil
		}
	})
	c.MustRegister(svc, WithMiddleware(canned))
	resp, err := c.Invoke(context.Background(), "s1", service.Request{Text: "x"})
	if err != nil || string(resp.Body) != "canned" {
		t.Fatalf("resp = %q, err = %v", resp.Body, err)
	}
	if atomic.LoadInt32(calls) != 0 {
		t.Errorf("service invoked %d times, want 0 (short-circuited)", *calls)
	}
	if c.Monitor("s1").Count() != 0 {
		t.Errorf("monitor recorded %d invocations, want 0", c.Monitor("s1").Count())
	}
}

func TestMiddlewareErrorPropagates(t *testing.T) {
	c := newClient(t, Config{})
	svc, calls := countingService("s1", "nlu", nil)
	boom := errors.New("middleware rejected")
	reject := Middleware(func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			return service.Response{}, boom
		}
	})
	c.MustRegister(svc)
	_, err := c.Invoke(context.Background(), "s1", service.Request{Text: "x"}, WithInvokeMiddleware(reject))
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the middleware's error", err)
	}
	if atomic.LoadInt32(calls) != 0 {
		t.Errorf("service invoked %d times, want 0", *calls)
	}
}

func TestLatencyParamsComputedLazilyAndOnce(t *testing.T) {
	var extracted atomic.Int32
	c := newClient(t, Config{})
	svc, _ := countingService("cached", "nlu", nil)
	c.MustRegister(svc, WithCacheable(), WithLatencyParams(func(req service.Request) []float64 {
		extracted.Add(1)
		return []float64{float64(req.ArgSize())}
	}))
	req := service.Request{Op: "analyze", Text: "same"}
	for i := 0; i < 10; i++ {
		if _, err := c.Invoke(context.Background(), "cached", req); err != nil {
			t.Fatal(err)
		}
	}
	// Only the single cache miss reaches the observation stages; the nine
	// cache hits must not pay for the user's extractor.
	if extracted.Load() != 1 {
		t.Errorf("params extracted %d times, want 1 (cache-hit fast path must skip it)", extracted.Load())
	}
}

func TestInvokeCategoryAppliesInvokeMiddleware(t *testing.T) {
	var seen atomic.Int32
	c := newClient(t, Config{})
	s1, _ := countingService("s1", "nlu", nil)
	c.MustRegister(s1)
	_, _, err := c.InvokeCategory(context.Background(), "nlu", service.Request{Text: "x"},
		WithInvokeMiddleware(countMW(&seen)))
	if err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 1 {
		t.Errorf("invoke middleware saw %d attempts, want 1", seen.Load())
	}
}
