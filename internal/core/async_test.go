package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/future"
	"repro/internal/service"
)

// TestInvokeAsyncSaturationSurfacesThroughFuture is the regression test for
// the blocking-submit bug: with the pool's one worker busy and its one
// queue slot taken, a further InvokeAsync must return immediately with a
// future failed with future.ErrPoolSaturated instead of blocking the
// caller.
func TestInvokeAsyncSaturationSurfacesThroughFuture(t *testing.T) {
	c := newClient(t, Config{AsyncWorkers: 1, AsyncQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := service.Func{
		Meta: service.Info{Name: "slow", Category: "nlu"},
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			close(started)
			<-release
			return service.Response{Body: []byte("done")}, nil
		},
	}
	defer close(release)
	c.MustRegister(blocker)
	fast, _ := countingService("fast", "nlu", nil)
	c.MustRegister(fast)

	f1 := c.InvokeAsync(context.Background(), "slow", service.Request{Text: "a"})
	<-started                                                                     // the single worker is now busy
	f2 := c.InvokeAsync(context.Background(), "fast", service.Request{Text: "b"}) // fills the queue

	overflowDone := make(chan *future.Future[service.Response], 1)
	go func() {
		overflowDone <- c.InvokeAsync(context.Background(), "fast", service.Request{Text: "c"})
	}()
	var f3 *future.Future[service.Response]
	select {
	case f3 = <-overflowDone:
	case <-time.After(5 * time.Second):
		t.Fatal("InvokeAsync blocked on a saturated pool")
	}
	if _, err := f3.GetTimeout(time.Second); !errors.Is(err, future.ErrPoolSaturated) {
		t.Fatalf("overflow future err = %v, want ErrPoolSaturated", err)
	}

	release <- struct{}{} // let the worker drain
	if resp, err := f1.GetTimeout(5 * time.Second); err != nil || string(resp.Body) != "done" {
		t.Fatalf("f1 = %q, %v", resp.Body, err)
	}
	if _, err := f2.GetTimeout(5 * time.Second); err != nil {
		t.Fatalf("queued future failed: %v", err)
	}
}

func TestInvokeAsyncClosedPoolFailsFast(t *testing.T) {
	c, err := NewClient(Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := countingService("s1", "nlu", nil)
	c.MustRegister(svc)
	c.Close()
	f := c.InvokeAsync(context.Background(), "s1", service.Request{Text: "x"})
	if _, err := f.GetTimeout(time.Second); !errors.Is(err, future.ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestInvokeCategoryAsyncSaturationSurfacesThroughFuture(t *testing.T) {
	c := newClient(t, Config{AsyncWorkers: 1, AsyncQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := service.Func{
		Meta: service.Info{Name: "slow", Category: "nlu"},
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return service.Response{}, nil
		},
	}
	defer close(release)
	c.MustRegister(blocker)

	_ = c.InvokeAsync(context.Background(), "slow", service.Request{Text: "a"})
	<-started                                                                   // worker busy
	_ = c.InvokeAsync(context.Background(), "slow", service.Request{Text: "b"}) // queue full
	f := c.InvokeCategoryAsync(context.Background(), "nlu", service.Request{Text: "c"})
	if _, err := f.GetTimeout(time.Second); !errors.Is(err, future.ErrPoolSaturated) {
		t.Fatalf("err = %v, want ErrPoolSaturated", err)
	}
}
