package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/service"
)

// ErrShed is returned when the adaptive admission controller refuses a
// call: the client is over its concurrency limit and taking more work
// would push admitted requests past the latency target. The HTTP facade
// maps it to 429, the fast "try again later" that keeps an overloaded
// facade responsive instead of letting every caller queue into collapse.
var ErrShed = errors.New("core: overloaded, call shed")

// ShedConfig configures the adaptive admission-control stage (ShedStage).
// The controller is an AIMD loop on a concurrency limit: admitted-call
// latency above TargetP99 multiplies the limit down; a healthy window with
// demand pressure (rejections, or high utilization) grows it back
// additively. This is the classic congestion-control shape — back off
// multiplicatively on overload signals, probe upward gently — applied to
// the facade's in-flight call count.
type ShedConfig struct {
	// TargetP99 is the admitted-call p99 latency the controller defends.
	// Zero disables shedding entirely.
	TargetP99 time.Duration
	// MaxInFlight caps the concurrency limit (and is its starting
	// value). Zero means 256.
	MaxInFlight int
	// MinInFlight floors the limit so multiplicative decrease can never
	// choke admission to zero. Zero means 4.
	MinInFlight int
	// Window is how often the controller re-evaluates the limit against
	// the latest latency window. Zero means 100ms.
	Window time.Duration
	// DecreaseFactor multiplies the limit on an over-target window.
	// Zero means 0.75; values are clamped to (0, 1).
	DecreaseFactor float64
}

func (c *ShedConfig) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.MinInFlight <= 0 {
		c.MinInFlight = 4
	}
	if c.MinInFlight > c.MaxInFlight {
		c.MinInFlight = c.MaxInFlight
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.75
	}
}

// Shedder is the adaptive admission controller behind ShedStage. The
// admit/release fast path is a pair of atomics; only the periodic
// adaptation (once per Window) takes a lock. It is safe for concurrent
// use.
type Shedder struct {
	cfg ShedConfig
	clk clock.Clock

	inflight atomic.Int64  // current in-flight admitted calls
	limit    atomic.Int64  // current concurrency limit
	admitted atomic.Uint64 // total admitted
	rejected atomic.Uint64 // total shed

	hist *metrics.Histogram // cumulative admitted-call latency

	lastAdapt atomic.Int64 // clk nanos of the last adaptation, CAS-guarded

	mu           sync.Mutex // serializes adapt(); guards the prev* window state
	prevSnap     metrics.HistSnapshot
	prevRejected uint64
}

// NewShedder returns a controller with the limit opened to MaxInFlight.
// A nil clk uses the real clock.
func NewShedder(cfg ShedConfig, clk clock.Clock) *Shedder {
	cfg.fill()
	if clk == nil {
		clk = clock.Real()
	}
	s := &Shedder{cfg: cfg, clk: clk, hist: metrics.NewHistogram()}
	s.limit.Store(int64(cfg.MaxInFlight))
	s.lastAdapt.Store(clk.Now().UnixNano())
	return s
}

// TryAcquire admits the call if the in-flight count is under the current
// limit. On admission the caller must pair it with Release. Admission is a
// CAS loop rather than a blind increment-then-rollback: a rejected probe
// must not touch the counter at all, or a herd of spinning shed callers
// keeps the count transiently inflated and starves the callers that would
// actually fit under the limit (a livelock the first chaos runs hit).
func (s *Shedder) TryAcquire() bool {
	limit := s.limit.Load()
	for {
		in := s.inflight.Load()
		if in >= limit {
			s.rejected.Add(1)
			// The reject path must drive adaptation too: when the
			// limit has collapsed and nothing is being admitted there
			// are no Release calls, and a Release-only controller
			// would stay collapsed forever.
			s.maybeAdapt()
			return false
		}
		if s.inflight.CompareAndSwap(in, in+1) {
			s.admitted.Add(1)
			return true
		}
	}
}

// Release returns an admitted call's slot and folds its observed latency
// into the controller's window, adapting the limit when a window has
// elapsed.
func (s *Shedder) Release(lat time.Duration) {
	s.inflight.Add(-1)
	s.hist.Observe(lat)
	s.maybeAdapt()
}

// maybeAdapt runs the adaptation when a full window has elapsed since the
// last one; a single CAS winner per window does the work.
func (s *Shedder) maybeAdapt() {
	now := s.clk.Now().UnixNano()
	last := s.lastAdapt.Load()
	if now-last < int64(s.cfg.Window) {
		return
	}
	if !s.lastAdapt.CompareAndSwap(last, now) {
		return
	}
	s.adapt()
}

// adapt recomputes the limit from the latest window: the bucket-wise
// difference of cumulative histogram snapshots yields the window's own
// latency distribution (the histogram has no reset — snapshots only grow),
// whose p99 drives the AIMD step.
func (s *Shedder) adapt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.hist.Snapshot()
	win := windowDelta(snap, s.prevSnap)
	rejectedNow := s.rejected.Load()
	winRejected := rejectedNow - s.prevRejected
	s.prevSnap = snap
	s.prevRejected = rejectedNow

	if win.Count == 0 && winRejected == 0 {
		return // idle window: nothing to learn
	}
	limit := s.limit.Load()
	switch {
	case win.Count > 0 && win.Quantile(0.99) > s.cfg.TargetP99:
		// Over target: multiplicative decrease.
		limit = int64(float64(limit) * s.cfg.DecreaseFactor)
		if limit < int64(s.cfg.MinInFlight) {
			limit = int64(s.cfg.MinInFlight)
		}
	case winRejected > 0 || s.inflight.Load()*4 >= limit*3:
		// Healthy window but demand pressure (we shed callers, or are
		// running ≥75% utilized): additive-ish increase, probing upward.
		step := limit / 4
		if step < 1 {
			step = 1
		}
		limit += step
		if limit > int64(s.cfg.MaxInFlight) {
			limit = int64(s.cfg.MaxInFlight)
		}
	}
	s.limit.Store(limit)
}

// windowDelta subtracts the previous cumulative snapshot from the current
// one bucket-wise, producing the distribution of just the observations in
// between. prev with no buckets (the first window) passes cur through.
func windowDelta(cur, prev metrics.HistSnapshot) metrics.HistSnapshot {
	if len(prev.Buckets) == 0 {
		return cur
	}
	d := metrics.HistSnapshot{
		Count:   cur.Count - prev.Count,
		Sum:     cur.Sum - prev.Sum,
		Buckets: make([]uint64, len(cur.Buckets)),
	}
	for i := range cur.Buckets {
		d.Buckets[i] = cur.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// InFlight returns the current admitted in-flight count.
func (s *Shedder) InFlight() int64 { return s.inflight.Load() }

// Limit returns the current adaptive concurrency limit.
func (s *Shedder) Limit() int64 { return s.limit.Load() }

// Admitted returns the total calls admitted since construction.
func (s *Shedder) Admitted() uint64 { return s.admitted.Load() }

// Rejected returns the total calls shed since construction.
func (s *Shedder) Rejected() uint64 { return s.rejected.Load() }

// LatencySnapshot returns the cumulative admitted-call latency
// distribution, for /metrics exposition and experiment reporting.
func (s *Shedder) LatencySnapshot() metrics.HistSnapshot { return s.hist.Snapshot() }

// ShedStage is the adaptive load-shedding stage. It sits after the
// breaker on purpose: breaker-open fast-fails never enter the admission
// window, so their microsecond latencies cannot drag the windowed p99
// down and crank the limit back open during an outage (and a shed call
// never counts as a breaker failure). Rejected calls fail fast with
// ErrShed; admitted calls are timed on the shedder's clock and their
// latency drives the AIMD loop.
func ShedStage(s *Shedder) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("shed")
			if !s.TryAcquire() {
				err := fmt.Errorf("%w: %s (inflight limit %d)", ErrShed, call.reg.name, s.Limit())
				sp.SetAttr("shed", "rejected")
				sp.SetError(err)
				sp.End()
				return service.Response{}, err
			}
			sp.SetAttr("shed", "admitted")
			call.span = sp
			start := s.clk.Now()
			resp, err := next(ctx, call)
			s.Release(s.clk.Since(start))
			call.span = parent
			sp.End()
			return resp, err
		}
	}
}
