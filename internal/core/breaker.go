package core

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
)

// ErrBreakerOpen is returned when a service's circuit breaker is open: the
// SDK refuses the invocation without calling the remote service. It
// deliberately does not match service.ErrUnavailable so a retry policy will
// not spin on a breaker that cannot close before the cooldown.
var ErrBreakerOpen = errors.New("core: circuit breaker open")

// BreakerConfig configures per-service circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive transient failures
	// (service.ErrUnavailable or ErrDeadline) that trips the breaker.
	// Zero disables circuit breaking.
	Threshold int
	// Cooldown is how long an open breaker rejects invocations before
	// admitting a single half-open probe. Zero means 30 seconds.
	Cooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Threshold > 0 && c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
}

// breakerState enumerates the classic circuit-breaker states.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a circuit breaker for one service. Closed, it admits every
// call and counts consecutive transient failures; at Threshold it opens and
// rejects calls for the cooldown; after the cooldown it admits one probe
// (half-open) and closes again on any non-transient outcome. It is safe for
// concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clk       clock.Clock

	mu          sync.Mutex
	consecutive int
	open        bool
	probing     bool
	openedAt    time.Time
}

// newBreaker returns a closed breaker.
func newBreaker(cfg BreakerConfig, clk clock.Clock) *Breaker {
	return &Breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown, clk: clk}
}

// Allow reports whether a call may proceed, admitting the half-open probe
// when an open breaker's cooldown has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if !b.probing && b.clk.Since(b.openedAt) >= b.cooldown {
		b.probing = true
		return true
	}
	return false
}

// Record folds one call outcome into the breaker. Transient failures count
// toward the threshold and re-open a probing breaker; any other outcome —
// success or a permanent error, both proof the service is responsive —
// closes it.
func (b *Breaker) Record(err error) {
	transient := err != nil &&
		(errors.Is(err, service.ErrUnavailable) || errors.Is(err, ErrDeadline))
	b.mu.Lock()
	defer b.mu.Unlock()
	if !transient {
		b.consecutive = 0
		b.open = false
		b.probing = false
		return
	}
	b.consecutive++
	if b.probing {
		b.probing = false
		b.openedAt = b.clk.Now()
		return
	}
	if !b.open && b.consecutive >= b.threshold {
		b.open = true
		b.openedAt = b.clk.Now()
	}
}

// Tripped reports whether the breaker is currently open (including
// half-open probing). Read-only: it never transitions state, so ranking can
// consult it without stealing the probe slot.
func (b *Breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// State returns the breaker's current state name — "closed", "open", or
// "half-open" — for observability.
func (b *Breaker) State() string { return b.state().String() }

// state returns the breaker's current state for observability.
func (b *Breaker) state() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.open && b.probing:
		return breakerHalfOpen
	case b.open:
		return breakerOpen
	default:
		return breakerClosed
	}
}

// BreakerState is a point-in-time summary of one service's breaker, as
// exposed by Client.BreakerStates and the HTTP façade.
type BreakerState struct {
	Service     string `json:"service"`
	State       string `json:"state"`
	Consecutive int    `json:"consecutiveFailures"`
}

// BreakerSet holds the per-service breakers of one Client, creating them
// lazily. It is safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	clk clock.Clock

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet returns an empty set producing breakers from cfg. A nil clk
// uses the real clock.
func NewBreakerSet(cfg BreakerConfig, clk clock.Clock) *BreakerSet {
	cfg.fill()
	if clk == nil {
		clk = clock.Real()
	}
	return &BreakerSet{cfg: cfg, clk: clk, m: make(map[string]*Breaker)}
}

// For returns the breaker for the named service, creating it on first use.
func (s *BreakerSet) For(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[name]
	if b == nil {
		b = newBreaker(s.cfg, s.clk)
		s.m[name] = b
	}
	return b
}

// Tripped reports whether the named service's breaker is open. Services
// never seen by the set are closed.
func (s *BreakerSet) Tripped(name string) bool {
	s.mu.Lock()
	b := s.m[name]
	s.mu.Unlock()
	return b != nil && b.Tripped()
}

// States summarizes every breaker the set has created, sorted by service.
func (s *BreakerSet) States() []BreakerState {
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for n := range s.m {
		names = append(names, n)
	}
	sort.Strings(names)
	breakers := make([]*Breaker, len(names))
	for i, n := range names {
		breakers[i] = s.m[n]
	}
	s.mu.Unlock()
	out := make([]BreakerState, len(names))
	for i, b := range breakers {
		b.mu.Lock()
		st := BreakerState{Service: names[i], Consecutive: b.consecutive}
		switch {
		case b.open && b.probing:
			st.State = breakerHalfOpen.String()
		case b.open:
			st.State = breakerOpen.String()
		default:
			st.State = breakerClosed.String()
		}
		b.mu.Unlock()
		out[i] = st
	}
	return out
}
