package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

func newTracedClient(t *testing.T, cfg Config) (*Client, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	t.Cleanup(tr.Close)
	cfg.Tracer = tr
	return newClient(t, cfg), tr
}

// spanTree indexes a trace's spans by name and verifies the parent link of
// each expected (child, parent) pair.
func spanTree(t *testing.T, tr *trace.Trace) map[string]trace.SpanData {
	t.Helper()
	byName := make(map[string]trace.SpanData, len(tr.Spans))
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	return byName
}

func assertLink(t *testing.T, byName map[string]trace.SpanData, child, parent string) {
	t.Helper()
	c, ok := byName[child]
	if !ok {
		t.Fatalf("trace has no span %q (have %v)", child, names(byName))
	}
	p, ok := byName[parent]
	if !ok {
		t.Fatalf("trace has no span %q (have %v)", parent, names(byName))
	}
	if c.ParentID != p.ID {
		t.Errorf("span %q parent = %d, want %q (%d)", child, c.ParentID, parent, p.ID)
	}
}

func names(byName map[string]trace.SpanData) []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	return out
}

func attrOf(s trace.SpanData, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

func TestTraceStageFullChain(t *testing.T) {
	c, tr := newTracedClient(t, Config{
		Breaker:  BreakerConfig{Threshold: 3},
		Deadline: DeadlineConfig{Factor: 2, Floor: time.Second},
	})
	svc, _ := countingService("s1", "search", nil)
	c.MustRegister(svc, WithCacheable())

	// First call misses the cache and runs the whole chain.
	if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "q"}); err != nil {
		t.Fatal(err)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("stored %d traces after one invoke, want 1", len(traces))
	}
	full, ok := tr.Trace(traces[0].ID)
	if !ok {
		t.Fatal("trace not retrievable by ID")
	}
	if full.Name != "invoke s1" {
		t.Errorf("root span name = %q, want %q", full.Name, "invoke s1")
	}
	byName := spanTree(t, full)
	// Every stage that ran must appear, nested in composition order.
	assertLink(t, byName, "cache", "invoke s1")
	assertLink(t, byName, "breaker", "cache")
	assertLink(t, byName, "quota", "breaker")
	assertLink(t, byName, "deadline", "quota")
	assertLink(t, byName, "monitor", "deadline")
	assertLink(t, byName, "predict", "monitor")
	assertLink(t, byName, "retry", "predict")
	assertLink(t, byName, "attempt", "retry")
	if got := attrOf(byName["cache"], "cache"); got != "miss" {
		t.Errorf("cache attr = %q, want miss", got)
	}
	if got := attrOf(byName["breaker"], "state"); got != "closed" {
		t.Errorf("breaker state attr = %q, want closed", got)
	}
	if got := attrOf(byName["quota"], "quota"); got != "none" {
		t.Errorf("quota attr = %q, want none", got)
	}
	if got := attrOf(byName["deadline"], "deadline"); got != "unbounded" {
		t.Errorf("first-call deadline attr = %q, want unbounded (no prediction yet)", got)
	}
	if got := attrOf(byName["retry"], "attempts"); got != "1" {
		t.Errorf("retry attempts attr = %q, want 1", got)
	}
	if got := attrOf(byName["invoke s1"], "service"); got != "s1" {
		t.Errorf("root service attr = %q, want s1", got)
	}

	// Second call is a cache hit: its own trace, just root + cache.
	if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "q"}); err != nil {
		t.Fatal(err)
	}
	traces = tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("stored %d traces after two invokes, want 2", len(traces))
	}
	hit, _ := tr.Trace(traces[0].ID) // newest first
	if len(hit.Spans) != 2 {
		t.Fatalf("cache-hit trace has %d spans, want 2 (root+cache): %+v", len(hit.Spans), hit.Spans)
	}
	if got := attrOf(spanTree(t, hit)["cache"], "cache"); got != "hit" {
		t.Errorf("cache-hit attr = %q, want hit", got)
	}
}

func TestTraceJoinsContextParent(t *testing.T) {
	c, tr := newTracedClient(t, Config{})
	svc, _ := countingService("s1", "search", nil)
	c.MustRegister(svc, WithCacheable())

	ctx, root := tr.Start(context.Background(), "request")
	if _, err := c.Invoke(ctx, "s1", service.Request{Text: "q"}); err != nil {
		t.Fatal(err)
	}
	root.End()

	got, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	byName := spanTree(t, got)
	assertLink(t, byName, "invoke s1", "request")
	if len(tr.Traces()) != 1 {
		t.Errorf("invocation under a request span must not open a second trace: %d", len(tr.Traces()))
	}
}

func TestTraceErrorRecorded(t *testing.T) {
	c, tr := newTracedClient(t, Config{})
	c.MustRegister(service.Func{
		Meta: service.Info{Name: "bad", Category: "x"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			return service.Response{}, service.ErrBadRequest
		},
	})
	if _, err := c.Invoke(context.Background(), "bad", service.Request{}); err == nil {
		t.Fatal("expected error")
	}
	got, _ := tr.Trace(tr.Traces()[0].ID)
	byName := spanTree(t, got)
	if byName["invoke bad"].Error == "" {
		t.Error("root span did not record the invocation error")
	}
	if byName["attempt"].Error == "" {
		t.Error("attempt span did not record the transport error")
	}
}

func TestNoTracerIsInert(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("s1", "search", nil)
	c.MustRegister(svc, WithCacheable())
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "s1", service.Request{Text: "q"}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Tracer() != nil {
		t.Error("Tracer() should be nil when unconfigured")
	}
	if got := c.Tracer().Traces(); got != nil {
		t.Errorf("nil tracer returned traces: %v", got)
	}
}
