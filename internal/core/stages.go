package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/failover"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/service"
	"repro/internal/trace"
)

// The built-in stages, in the order the Client composes them (outermost
// first):
//
//	TraceStage    — root span per invocation (only when Config.Tracer is set)
//	CacheStage    — response cache + single-flight de-duplication
//	BreakerStage  — circuit breaker (only when Config.Breaker enables it)
//	ShedStage     — adaptive admission control (only when Config.Shed
//	                enables it; after the breaker so open-circuit
//	                fast-fails stay out of the admission window)
//	QuotaStage    — client-side quota enforcement
//	DeadlineStage — predicted-latency deadline (only when Config.Deadline
//	                enables it)
//	MonitorStage  — latency/availability observation + quality rating
//	PredictStage  — latency-parameter observation
//	RetryStage    — per-service retries (failover.InvokeFunc)
//
// Every stage on a traced call opens a child span around the rest of the
// chain and annotates its decision (cache hit/miss, breaker state, quota
// verdict, computed deadline, attempt count), so /v1/traces/{id} shows one
// invocation's complete journey through the stack. The swap pattern —
// stash call.span, install the child, restore after next returns — keeps
// nesting correct without any context allocation on the hot path; the zero
// Span makes all of it inert when tracing is off or the trace unsampled.
//
// Client-wide (Config.Middleware), per-registration (WithMiddleware), and
// per-invocation (WithInvokeMiddleware) middleware wrap outside the whole
// stack, so custom stages observe every call including cache hits. Each
// stage is independently constructible and testable; a Client is just one
// particular composition.

// ErrDeadline is returned when DeadlineStage's predicted-latency deadline
// expires before the service responds. The circuit breaker counts it as a
// transient failure: a too-slow service is treated like an unavailable one.
var ErrDeadline = errors.New("core: predicted-latency deadline exceeded")

// TraceStage opens the root span for each invocation, named for the
// registration ("invoke <service>") and joined to any span already in ctx
// (an HTTP request span, a pipeline item span). It is composed outermost
// when Config.Tracer is set, so the span covers custom middleware too and
// Call.Span lets them annotate it. Unsampled invocations carry the zero
// Span and cost nothing downstream.
func TraceStage(tr *trace.Tracer) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			sp := tr.StartSpan(ctx, call.reg.spanName)
			if !sp.Recording() {
				return next(ctx, call)
			}
			sp.SetAttr("service", call.reg.name)
			call.span = sp
			resp, err := next(ctx, call)
			call.span = trace.Span{}
			if err != nil {
				sp.SetError(err)
			}
			sp.End()
			return resp, err
		}
	}
}

// CacheStage serves cacheable calls from the client's sharded LRU,
// de-duplicating concurrent misses for the same key through flight so one
// backend call feeds every waiter (paper §2: caching avoids redundant
// service calls). Calls that are not cacheable, or carry NoCache, pass
// through untouched. The invocation context governs the single-flight
// wait: a caller whose ctx is cancelled while another caller's fill is in
// flight returns ctx.Err() immediately instead of waiting out the leader.
//
// mem is the concrete *cache.Sharded rather than the cache.Store
// interface on purpose: the hit probe below is the hottest line in the
// SDK, and the concrete type lets the compiler inline the whole probe
// (shard pick + LRU lookup). Routing it through the interface measured
// ~3% on the end-to-end cache-hit path (TestPipelineOverheadCacheHit).
// A single-shard Sharded behaves exactly like a Memory (the cache
// package's conformance suite runs the same tests over both), so no
// generality is lost for tests or alternative wirings.
func CacheStage(mem *cache.Sharded[service.Response], flight *cache.Group[service.Response]) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			if !call.reg.cacheable || call.NoCache {
				return next(ctx, call)
			}
			key := call.reg.cachePrefix + call.Req.CacheKey()
			parent := call.span
			sp := parent.Child("cache")
			// Hit fast path first: probing the cache before building the
			// fill closure keeps the hit entirely allocation-free beyond
			// the key itself. Fill (not GetOrFill) on the miss path — it
			// is stats-neutral, so the probe stays the only recorded
			// cache lookup.
			if resp, err := mem.Get(key); err == nil {
				sp.SetAttr("cache", "hit")
				sp.End()
				return resp, nil
			}
			sp.SetAttr("cache", "miss")
			call.span = sp
			resp, err := cache.Fill(ctx, mem, flight, key, func() (service.Response, error) {
				return next(ctx, call)
			})
			call.span = parent
			sp.End()
			return resp, err
		}
	}
}

// QuotaStage refuses calls beyond the registration's client-side quota
// without invoking the service, preserving a limited allowance (paper
// §2.2). Calls without a quota pass through.
func QuotaStage() Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("quota")
			q := call.reg.quota
			switch {
			case q == nil:
				sp.SetAttr("quota", "none")
			case !q.Take():
				err := fmt.Errorf("%w: %s", ErrClientQuota, call.reg.name)
				sp.SetAttr("quota", "rejected")
				sp.SetError(err)
				sp.End()
				return service.Response{}, err
			default:
				sp.SetAttr("quota", "ok")
			}
			call.span = sp
			resp, err := next(ctx, call)
			call.span = parent
			sp.End()
			return resp, err
		}
	}
}

// BreakerStage consults the service's circuit breaker before the call and
// records the outcome after: consecutive transient failures trip the
// breaker, which then rejects calls with ErrBreakerOpen until its cooldown
// admits a probe. Client.Rank demotes tripped services, feeding observed
// availability back into selection.
func BreakerStage(set *BreakerSet) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("breaker")
			b := set.For(call.reg.name)
			if !b.Allow() {
				err := fmt.Errorf("%w: %s", ErrBreakerOpen, call.reg.name)
				sp.SetAttr("state", "open")
				sp.SetError(err)
				sp.End()
				return service.Response{}, err
			}
			if sp.Recording() {
				sp.SetAttr("state", b.State())
			}
			call.span = sp
			resp, err := next(ctx, call)
			call.span = parent
			b.Record(err)
			sp.End()
			return resp, err
		}
	}
}

// DeadlineConfig configures DeadlineStage.
type DeadlineConfig struct {
	// Factor multiplies the predicted latency to produce the call's
	// deadline. Zero disables the stage.
	Factor float64
	// Floor is the minimum deadline, guarding against overly aggressive
	// predictions from sparse data. Zero means 100ms.
	Floor time.Duration
	// Cap bounds the deadline from above. Zero means uncapped.
	Cap time.Duration
}

func (c *DeadlineConfig) fill() {
	if c.Factor > 0 && c.Floor <= 0 {
		c.Floor = 100 * time.Millisecond
	}
}

// DeadlineStage bounds each call at Factor × the service's predicted
// latency (clamped to [Floor, Cap]), derived from the same parameterized
// prediction that drives ranking (paper §2). Services with no prediction
// yet run unbounded. When the stage's own deadline — not the caller's —
// expires, the error wraps ErrDeadline so the breaker treats the service as
// unavailable. The deadline runs on real time (context machinery); virtual-
// clock simulations should leave the stage disabled.
func DeadlineStage(predictLatency func(name string, params []float64) (time.Duration, error), cfg DeadlineConfig) Middleware {
	cfg.fill()
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("deadline")
			pred, err := predictLatency(call.reg.name, call.LatencyParams())
			if err != nil || pred <= 0 {
				sp.SetAttr("deadline", "unbounded")
				call.span = sp
				resp, err := next(ctx, call)
				call.span = parent
				sp.End()
				return resp, err
			}
			d := time.Duration(cfg.Factor * float64(pred))
			if d < cfg.Floor {
				d = cfg.Floor
			}
			if cfg.Cap > 0 && d > cfg.Cap {
				d = cfg.Cap
			}
			sp.SetDuration("predicted_ms", pred)
			sp.SetDuration("deadline_ms", d)
			dctx, cancel := context.WithTimeout(ctx, d)
			defer cancel()
			call.span = sp
			resp, err := next(dctx, call)
			call.span = parent
			if err != nil && errors.Is(dctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
				err = fmt.Errorf("%w: %s after %v: %w", ErrDeadline, call.reg.name, d, err)
				sp.SetError(err)
			}
			sp.End()
			return resp, err
		}
	}
}

// MonitorStage records every call that reaches the service — latency,
// availability, attempts, latency parameters — into the service's monitor,
// and rates successful responses with the registration's quality function
// (paper §2: monitoring and data collection, service quality evaluation).
func MonitorStage(monitors *metrics.Registry) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("monitor")
			call.span = sp
			resp, err := next(ctx, call)
			call.span = parent
			mon := monitors.Monitor(call.reg.name)
			mon.Record(metrics.Observation{
				Latency:  call.Elapsed,
				Err:      err,
				Params:   call.LatencyParams(),
				Attempts: call.Attempts,
			})
			sp.SetDuration("recorded_ms", call.Elapsed)
			sp.End()
			if err != nil {
				return service.Response{}, err
			}
			if q := call.reg.quality; q != nil {
				mon.RecordQuality(q(call.Req, resp))
			}
			return resp, nil
		}
	}
}

// PredictStage feeds successful calls' (latency parameters, latency) pairs
// into the service's latency predictor (paper §2: predicting latency from
// latency parameters).
func PredictStage(set *PredictorSet) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("predict")
			call.span = sp
			resp, err := next(ctx, call)
			call.span = parent
			if err == nil {
				set.Observe(call.reg.name, call.LatencyParams(), call.Elapsed)
			}
			sp.End()
			return resp, err
		}
	}
}

// RetryStage applies the call's retry policy to the rest of the chain
// (paper §2.1: retrying unresponsive services a per-service number of
// times), recording the attempt count and total elapsed time — including
// backoff — on the call for the observation stages outside it.
func RetryStage(clk clock.Clock) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) (service.Response, error) {
			parent := call.span
			sp := parent.Child("retry")
			call.span = sp
			start := clk.Now()
			attempt := 0
			resp, attempts, err := failover.InvokeFunc(ctx, clk, func(ctx context.Context) (service.Response, error) {
				attempt++
				asp := sp.Child("attempt")
				asp.SetInt("attempt", int64(attempt))
				call.span = asp
				r, e := next(ctx, call)
				call.span = sp
				if e != nil {
					asp.SetError(e)
				}
				asp.End()
				return r, e
			}, call.Retry())
			call.Attempts = attempts
			call.Elapsed = clk.Since(start)
			call.span = parent
			sp.SetInt("attempts", int64(attempts))
			sp.SetDuration("elapsed_ms", call.Elapsed)
			if err != nil {
				sp.SetError(err)
			}
			sp.End()
			return resp, err
		}
	}
}

// PredictorSet owns the per-service latency predictors of one Client.
// predict.Predictor is not itself safe for concurrent use, so every Observe
// and Predict runs under the set's lock. It is safe for concurrent use.
type PredictorSet struct {
	cfg predict.Config

	mu sync.Mutex
	m  map[string]*predict.Predictor
}

// NewPredictorSet returns an empty set producing predictors from cfg.
func NewPredictorSet(cfg predict.Config) *PredictorSet {
	return &PredictorSet{cfg: cfg, m: make(map[string]*predict.Predictor)}
}

// predictor returns the named service's predictor, creating and registering
// it on first use so no observation is ever dropped. Callers must hold mu.
func (s *PredictorSet) predictor(name string) *predict.Predictor {
	p := s.m[name]
	if p == nil {
		p = predict.New(s.cfg)
		s.m[name] = p
	}
	return p
}

// Observe records that an invocation of name with the given latency
// parameters took lat.
func (s *PredictorSet) Observe(name string, params []float64, lat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.predictor(name).Observe(params, lat)
}

// Predict estimates the latency of invoking name with the given parameters;
// peersMS carries mean latencies of similar services for the peer fallback
// policies.
func (s *PredictorSet) Predict(name string, params, peersMS []float64) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.predictor(name).Predict(params, peersMS)
}
