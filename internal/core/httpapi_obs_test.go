package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/trace"
)

func newObsAPIServer(t *testing.T, opts ...APIOption) (*httptest.Server, *Client, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	t.Cleanup(tr.Close)
	c, err := NewClient(Config{Tracer: tr, Breaker: BreakerConfig{Threshold: 3}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	svc, _ := countingService("echo", "nlu", nil)
	c.MustRegister(svc, WithCacheable())
	srv := httptest.NewServer(NewAPI(c, opts...))
	t.Cleanup(srv.Close)
	return srv, c, tr
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestAPIStatsContent(t *testing.T) {
	srv, _, _ := newObsAPIServer(t)
	for i := 0; i < 3; i++ {
		r := postJSON(t, srv.URL+"/v1/invoke", invokeBody{Service: "echo", Request: service.Request{Text: "q"}})
		r.Body.Close()
	}
	var out struct {
		Services []metrics.Snapshot `json:"services"`
	}
	resp := getJSON(t, srv.URL+"/v1/stats", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Services) != 1 {
		t.Fatalf("stats cover %d services, want 1: %+v", len(out.Services), out)
	}
	s := out.Services[0]
	// Two of the three invocations were cache hits: only the miss reaches
	// the monitor.
	if s.Name != "echo" || s.Count != 1 || s.Failures != 0 || s.Availability != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="(\\.|[^"\\])*"(,[a-zA-Z0-9_]+="(\\.|[^"\\])*")*\})? (NaN|[+-]Inf|[0-9eE+.-]+)$`)

func TestAPIMetricsPrometheusText(t *testing.T) {
	extra := metrics.NewRegistry()
	extra.Monitor("fetch").Record(metrics.Observation{Latency: 5e6})
	srv, _, _ := newObsAPIServer(t, WithExtraMetrics("richsdk_pipeline_stage", "stage", extra))
	for i := 0; i < 2; i++ {
		r := postJSON(t, srv.URL+"/v1/invoke", invokeBody{Service: "echo", Request: service.Request{Text: "q"}})
		r.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every non-comment line must be a well-formed sample; every sample's
	// family must have HELP and TYPE headers.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("sample %q lacks a TYPE header", name)
		}
	}

	for _, want := range []string{
		`richsdk_service_invocations_total{service="echo"} 1`,
		`richsdk_service_failures_total{service="echo"} 0`,
		`richsdk_service_availability{service="echo"} 1`,
		`richsdk_service_latency_seconds{service="echo",quantile="0.5"}`,
		`richsdk_service_latency_seconds{service="echo",quantile="0.95"}`,
		`richsdk_service_latency_seconds{service="echo",quantile="0.99"}`,
		`richsdk_pipeline_stage_invocations_total{stage="fetch"} 1`,
		`richsdk_cache_hits_total 1`,
		`richsdk_breaker_state{service="echo"} 0`,
		`richsdk_traces_sampled_total 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}

// TestAPIMetricsHistogramFamilies validates true histogram exposition
// end-to-end: a Set attached via WithInstruments renders on /metrics with
// well-formed sample lines, TYPE headers covering the _bucket/_sum/_count
// suffixes, monotone non-decreasing cumulative buckets per labelset, a
// +Inf bucket exactly equal to _count, and correct escaping of label
// values containing quotes, backslashes, and newlines.
func TestAPIMetricsHistogramFamilies(t *testing.T) {
	set := metrics.NewSet()
	awkward := metrics.Label{Name: "source", Value: "a\\b\"c\nd"}
	hist := set.Histogram("richsdk_test_latency_seconds", "Test latency family.", awkward)
	for _, ms := range []int{1, 3, 3, 10, 40, 200, 1500} {
		hist.Observe(time.Duration(ms) * time.Millisecond)
	}
	// A second labelset in the same family: buckets must group per labelset.
	other := set.Histogram("richsdk_test_latency_seconds", "Test latency family.",
		metrics.Label{Name: "source", Value: "plain"})
	other.Observe(5 * time.Millisecond)
	set.Counter("richsdk_test_events_total", "Test counter family.").Add(7)

	srv, _, _ := newObsAPIServer(t, WithInstruments(set))
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Strict line-level lint, now aware of the _bucket suffix.
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Errorf("sample %q lacks a TYPE header", name)
			}
		}
	}
	if got := typed["richsdk_test_latency_seconds"]; got != "histogram" {
		t.Errorf("TYPE richsdk_test_latency_seconds = %q, want histogram", got)
	}

	// Escaped label value appears verbatim; the raw control characters
	// never do (a raw newline would have broken promLine above anyway).
	if !strings.Contains(body, `source="a\\b\"c\nd"`) {
		t.Errorf("escaped label value missing from body")
	}

	// Reconstruct each labelset's bucket ladder and check cumulativity.
	type ladder struct {
		counts []float64
		infVal float64
		hasInf bool
	}
	ladders := map[string]*ladder{}
	counts := map[string]float64{}
	leRe := regexp.MustCompile(`^richsdk_test_latency_seconds_bucket\{(.*)le="([^"]*|\+Inf)"\} (\S+)$`)
	countRe := regexp.MustCompile(`^richsdk_test_latency_seconds_count(?:\{(.*)\})? (\S+)$`)
	for _, line := range strings.Split(body, "\n") {
		if m := leRe.FindStringSubmatch(line); m != nil {
			key := strings.TrimSuffix(m[1], ",")
			l := ladders[key]
			if l == nil {
				l = &ladder{}
				ladders[key] = l
			}
			v := parseProm(t, m[3])
			if m[2] == "+Inf" {
				l.infVal = v
				l.hasInf = true
			} else {
				l.counts = append(l.counts, v)
			}
			continue
		}
		if m := countRe.FindStringSubmatch(line); m != nil {
			counts[m[1]] = parseProm(t, m[2])
		}
	}
	if len(ladders) != 2 {
		t.Fatalf("found %d bucket labelsets, want 2 (keys: %v)", len(ladders), ladders)
	}
	for key, l := range ladders {
		if !l.hasInf {
			t.Fatalf("labelset %q has no +Inf bucket", key)
		}
		if len(l.counts) == 0 {
			t.Fatalf("labelset %q has no finite buckets", key)
		}
		for i := 1; i < len(l.counts); i++ {
			if l.counts[i] < l.counts[i-1] {
				t.Errorf("labelset %q: bucket %d decreases: %v -> %v", key, i, l.counts[i-1], l.counts[i])
			}
		}
		if last := l.counts[len(l.counts)-1]; l.infVal < last {
			t.Errorf("labelset %q: +Inf %v < last finite bucket %v", key, l.infVal, last)
		}
		count, ok := counts[key]
		if !ok {
			t.Fatalf("labelset %q has buckets but no _count (have %v)", key, counts)
		}
		if l.infVal != count {
			t.Errorf("labelset %q: +Inf bucket %v != _count %v", key, l.infVal, count)
		}
	}
	// Sanity: the awkward labelset observed 7 events.
	awkwardKey := `source="a\\b\"c\nd"`
	if counts[awkwardKey] != 7 {
		t.Errorf("_count for awkward labelset = %v, want 7 (keys: %v)", counts[awkwardKey], counts)
	}
}

func parseProm(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable sample value %q: %v", s, err)
	}
	return v
}

func TestAPITracesEndpoints(t *testing.T) {
	srv, _, _ := newObsAPIServer(t)
	r := postJSON(t, srv.URL+"/v1/invoke", invokeBody{Service: "echo", Request: service.Request{Text: "traced"}})
	r.Body.Close()

	var list struct {
		Traces []trace.Summary `json:"traces"`
	}
	if resp := getJSON(t, srv.URL+"/v1/traces", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("listed %d traces after one invoke, want 1", len(list.Traces))
	}
	sum := list.Traces[0]
	if sum.Name != "invoke echo" || sum.ID == "" {
		t.Errorf("summary = %+v", sum)
	}

	var full trace.Trace
	if resp := getJSON(t, srv.URL+"/v1/traces/"+sum.ID, &full); resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	if full.ID != sum.ID {
		t.Errorf("trace ID = %q, want %q", full.ID, sum.ID)
	}
	// Root span per invoke, parent/child links intact across the stages
	// that ran (no breaker-free, quota-free shortcuts in this config).
	byID := map[int]trace.SpanData{}
	var root trace.SpanData
	for _, s := range full.Spans {
		byID[s.ID] = s
		if s.ParentID == 0 {
			root = s
		}
	}
	if root.Name != "invoke echo" {
		t.Fatalf("root span = %+v", root)
	}
	for _, s := range full.Spans {
		if s.ParentID == 0 {
			continue
		}
		if _, ok := byID[s.ParentID]; !ok {
			t.Errorf("span %q has dangling parent %d", s.Name, s.ParentID)
		}
	}
	wantStages := []string{"cache", "breaker", "quota", "monitor", "predict", "retry", "attempt"}
	have := map[string]bool{}
	for _, s := range full.Spans {
		have[s.Name] = true
	}
	for _, st := range wantStages {
		if !have[st] {
			t.Errorf("trace missing stage span %q (have %v)", st, have)
		}
	}

	if resp := getJSON(t, srv.URL+"/v1/traces/deadbeef00000000", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing-trace status = %d, want 404", resp.StatusCode)
	}
}

func TestAPITracesWithoutTracer(t *testing.T) {
	srv, _ := newAPIServer(t) // no tracer configured
	var list struct {
		Traces []trace.Summary `json:"traces"`
	}
	if resp := getJSON(t, srv.URL+"/v1/traces", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if len(list.Traces) != 0 {
		t.Errorf("tracerless client listed traces: %+v", list)
	}
	if resp := getJSON(t, srv.URL+"/v1/traces/abc", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	// /metrics still renders, just without trace families.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.Contains(string(raw), "richsdk_traces_sampled_total") {
		t.Errorf("tracerless /metrics wrong: status=%d", resp.StatusCode)
	}
}
