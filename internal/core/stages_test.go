package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/failover"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/service"
)

// fixed returns an Invoker with a canned outcome, counting invocations.
func fixed(resp service.Response, err error, calls *int) Invoker {
	return func(ctx context.Context, call *Call) (service.Response, error) {
		*calls++
		return resp, err
	}
}

// cacheableReg builds the minimal registration a CacheStage test call
// needs: a name, the cacheable flag, and the precomputed key prefix that
// Register would normally derive.
func cacheableReg(name string) *registration {
	return &registration{name: name, cacheable: true, cachePrefix: "svc:" + name + ":"}
}

func TestQuotaStageRefusesWithoutInvoking(t *testing.T) {
	var calls int
	inv := Compose(fixed(service.Response{Body: []byte("ok")}, nil, &calls), QuotaStage())
	call := &Call{reg: &registration{name: "q", quota: service.NewQuota(1, time.Hour, nil)}}
	if _, err := inv(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	_, err := inv(context.Background(), call)
	if !errors.Is(err, ErrClientQuota) {
		t.Errorf("err = %v, want ErrClientQuota", err)
	}
	if calls != 1 {
		t.Errorf("inner calls = %d, want 1 (quota must refuse before invoking)", calls)
	}
}

func TestQuotaStagePassThroughWithoutQuota(t *testing.T) {
	var calls int
	inv := Compose(fixed(service.Response{}, nil, &calls), QuotaStage())
	for i := 0; i < 3; i++ {
		if _, err := inv(context.Background(), &Call{reg: &registration{name: "q"}}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Errorf("inner calls = %d, want 3", calls)
	}
}

func TestCacheStageServesHitsAndRespectsNoCache(t *testing.T) {
	mem := cache.NewSharded[service.Response](16, cache.WithShards(1))
	flight := cache.NewGroup[service.Response]()
	var calls int
	inv := Compose(fixed(service.Response{Body: []byte("v")}, nil, &calls), CacheStage(mem, flight))
	req := service.Request{Op: "x", Text: "t"}

	for i := 0; i < 5; i++ {
		if _, err := inv(context.Background(), &Call{reg: cacheableReg("s"), Req: req}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Errorf("inner calls = %d, want 1 (cached)", calls)
	}
	if _, err := inv(context.Background(), &Call{reg: cacheableReg("s"), Req: req, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("inner calls = %d, want 2 (NoCache bypasses)", calls)
	}
	if _, err := inv(context.Background(), &Call{reg: &registration{name: "s"}, Req: req}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("inner calls = %d, want 3 (not cacheable bypasses)", calls)
	}
}

func TestCacheStageKeysAreServiceScoped(t *testing.T) {
	mem := cache.NewSharded[service.Response](16, cache.WithShards(1))
	flight := cache.NewGroup[service.Response]()
	var calls int
	inv := Compose(fixed(service.Response{}, nil, &calls), CacheStage(mem, flight))
	req := service.Request{Op: "x", Text: "t"}
	for _, name := range []string{"a", "b"} {
		if _, err := inv(context.Background(), &Call{reg: cacheableReg(name), Req: req}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Errorf("inner calls = %d, want 2 (distinct per-service keys)", calls)
	}
}

func TestRetryStageRecordsAttemptsAndBackoffElapsed(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	var calls int
	flaky := Invoker(func(ctx context.Context, call *Call) (service.Response, error) {
		calls++
		if calls < 3 {
			return service.Response{}, fmt.Errorf("flaky: %w", service.ErrUnavailable)
		}
		return service.Response{Body: []byte("ok")}, nil
	})
	inv := Compose(flaky, RetryStage(clk))
	call := &Call{reg: &registration{name: "s", policy: failover.RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond}}}

	done := make(chan error, 1)
	go func() {
		_, err := inv(context.Background(), call)
		done <- err
	}()
	// Two backoff sleeps of 10ms separate the three attempts.
	for i := 0; i < 2; i++ {
		for clk.Pending() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		clk.Advance(10 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if call.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", call.Attempts)
	}
	if call.Elapsed < 20*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 20ms (must include backoff)", call.Elapsed)
	}
}

func TestMonitorStageRecordsOutcomeAndQuality(t *testing.T) {
	reg := metrics.NewRegistry()
	var calls int
	okInv := Compose(fixed(service.Response{Body: []byte("ok")}, nil, &calls), MonitorStage(reg))
	call := &Call{
		reg: &registration{
			name:    "m",
			quality: func(service.Request, service.Response) float64 { return 0.75 },
			params:  func(service.Request) []float64 { return []float64{42} },
		},
		Elapsed:  5 * time.Millisecond, // as RetryStage would have recorded
		Attempts: 3,
	}
	if _, err := okInv(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	snap := reg.Monitor("m").Snapshot()
	if snap.Count != 1 || snap.Failures != 0 {
		t.Errorf("snapshot = %+v, want one success", snap)
	}
	if snap.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (three attempts)", snap.Retries)
	}
	if snap.MeanQuality != 0.75 || snap.QualityCount != 1 {
		t.Errorf("quality = %v/%d, want 0.75/1", snap.MeanQuality, snap.QualityCount)
	}
	params, _ := reg.Monitor("m").ParamObservations()
	if len(params) != 1 || params[0][0] != 42 {
		t.Errorf("params = %v, want [[42]]", params)
	}

	failInv := Compose(fixed(service.Response{}, fmt.Errorf("down: %w", service.ErrUnavailable), &calls), MonitorStage(reg))
	if _, err := failInv(context.Background(), &Call{reg: &registration{name: "m"}, Attempts: 1}); err == nil {
		t.Fatal("want error")
	}
	snap = reg.Monitor("m").Snapshot()
	if snap.Count != 2 || snap.Failures != 1 {
		t.Errorf("snapshot = %+v, want one failure recorded", snap)
	}
	if snap.QualityCount != 1 {
		t.Errorf("QualityCount = %d, want 1 (failures are not rated)", snap.QualityCount)
	}
}

func TestPredictStageObservesSuccessesOnly(t *testing.T) {
	set := NewPredictorSet(predict.Config{MinObservations: 1})
	var calls int
	params := func(service.Request) []float64 { return []float64{1} }

	failInv := Compose(fixed(service.Response{}, fmt.Errorf("down: %w", service.ErrUnavailable), &calls), PredictStage(set))
	_, _ = failInv(context.Background(), &Call{reg: &registration{name: "p", params: params}})
	if _, err := set.Predict("p", []float64{1}, nil); !errors.Is(err, predict.ErrNoData) {
		t.Errorf("err = %v, want ErrNoData (failures must not be observed)", err)
	}

	okInv := Compose(fixed(service.Response{}, nil, &calls), PredictStage(set))
	call := &Call{reg: &registration{name: "p", params: params}, Elapsed: 7 * time.Millisecond}
	if _, err := okInv(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	d, err := set.Predict("p", []float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("prediction = %v, want > 0", d)
	}
}

// hangingInvoker blocks until the context is cancelled, like an
// unresponsive remote service.
func hangingInvoker() Invoker {
	return func(ctx context.Context, call *Call) (service.Response, error) {
		<-ctx.Done()
		return service.Response{}, fmt.Errorf("hung: %w: %w", service.ErrUnavailable, ctx.Err())
	}
}

func TestDeadlineStageBoundsSlowCalls(t *testing.T) {
	predictFn := func(name string, params []float64) (time.Duration, error) {
		return 10 * time.Millisecond, nil
	}
	inv := Compose(hangingInvoker(), DeadlineStage(predictFn, DeadlineConfig{Factor: 2, Floor: time.Millisecond}))
	start := time.Now()
	_, err := inv(context.Background(), &Call{reg: &registration{name: "slow"}})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("call took %v, deadline did not bound it", elapsed)
	}
}

func TestDeadlineStagePassesThroughWithoutPrediction(t *testing.T) {
	predictFn := func(name string, params []float64) (time.Duration, error) {
		return 0, predict.ErrNoData
	}
	var calls int
	inv := Compose(fixed(service.Response{Body: []byte("ok")}, nil, &calls), DeadlineStage(predictFn, DeadlineConfig{Factor: 2}))
	resp, err := inv(context.Background(), &Call{reg: &registration{name: "s"}})
	if err != nil || string(resp.Body) != "ok" {
		t.Fatalf("resp = %q, err = %v", resp.Body, err)
	}
}

func TestDeadlineStageDoesNotMaskCallerCancellation(t *testing.T) {
	predictFn := func(name string, params []float64) (time.Duration, error) {
		return time.Hour, nil // stage deadline far away
	}
	inv := Compose(hangingInvoker(), DeadlineStage(predictFn, DeadlineConfig{Factor: 1}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := inv(ctx, &Call{reg: &registration{name: "s"}})
	if err == nil {
		t.Fatal("want error")
	}
	if errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v; caller cancellation must not be reported as the stage's deadline", err)
	}
}

func TestDeadlineStageHonorsFloorAndCap(t *testing.T) {
	predictFn := func(name string, params []float64) (time.Duration, error) {
		return time.Hour, nil
	}
	// Cap of 15ms bounds the hour-long prediction.
	inv := Compose(hangingInvoker(), DeadlineStage(predictFn, DeadlineConfig{Factor: 3, Cap: 15 * time.Millisecond}))
	start := time.Now()
	_, err := inv(context.Background(), &Call{reg: &registration{name: "s"}})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("call took %v, cap did not bound it", elapsed)
	}
}

// TestClientDeadlineEndToEnd drives the deadline through the whole client:
// a service trained fast turns unresponsive, and the predicted-latency
// deadline converts the hang into ErrDeadline instead of blocking.
func TestClientDeadlineEndToEnd(t *testing.T) {
	c := newClient(t, Config{
		Deadline: DeadlineConfig{Factor: 2, Floor: 30 * time.Millisecond},
		Predict:  predict.Config{MinObservations: 2},
	})
	var hang atomic.Bool
	svc := service.Func{
		Meta: service.Info{Name: "moody", Category: "nlu"},
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			if hang.Load() {
				<-ctx.Done()
				return service.Response{}, fmt.Errorf("hung: %w: %w", service.ErrUnavailable, ctx.Err())
			}
			time.Sleep(2 * time.Millisecond)
			return service.Response{Body: []byte("ok")}, nil
		},
	}
	c.MustRegister(svc, WithRetry(failover.RetryPolicy{MaxAttempts: 1}))
	for i := 0; i < 4; i++ {
		if _, err := c.Invoke(context.Background(), "moody", service.Request{Text: fmt.Sprintf("warm %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	hang.Store(true)
	start := time.Now()
	_, err := c.Invoke(context.Background(), "moody", service.Request{Text: "now hang"})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("hang lasted %v; deadline should have cut it near the 30ms floor", elapsed)
	}
}

func TestPredictorSetNeverDropsObservations(t *testing.T) {
	set := NewPredictorSet(predict.Config{MinObservations: 4})
	// Interleave Predict (which used to allocate a throwaway predictor)
	// with Observe; every observation must land in the same predictor.
	for i := 0; i < 4; i++ {
		_, _ = set.Predict("s", []float64{1}, nil)
		set.Observe("s", []float64{float64(i + 1)}, time.Duration(i+1)*time.Millisecond)
	}
	if _, err := set.Predict("s", []float64{2}, nil); err != nil {
		t.Errorf("Predict after 4 observations: %v, want a fitted model", err)
	}
}

func TestPredictorSetConcurrentAccess(t *testing.T) {
	set := NewPredictorSet(predict.Config{MinObservations: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g%2)
			for i := 0; i < 50; i++ {
				set.Observe(name, []float64{float64(i)}, time.Millisecond)
				_, _ = set.Predict(name, []float64{float64(i)}, []float64{1, 2})
			}
		}(g)
	}
	wg.Wait()
}
