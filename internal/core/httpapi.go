package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/trace"
)

// The paper: "In order to allow programs written in other languages to
// access the rich SDK, the rich SDK can expose an HTTP interface allowing
// applications written in other languages to use it." API returns that
// interface:
//
//	POST /v1/invoke            {service, request}            -> Response
//	POST /v1/invoke-category   {category, request}           -> {response, attempts}
//	POST /v1/invoke-all        {category, request}           -> {results}
//	POST /v1/rank              {category, request}           -> {ranked}
//	GET  /v1/services                                        -> {services}
//	GET  /v1/stats                                           -> {services: [snapshots]}
//	GET  /v1/cache/stats                                     -> cache.Stats
//	POST /v1/cache/invalidate                                -> 204
//	GET  /v1/breakers                                        -> {breakers: [states]}
//	GET  /v1/traces                                          -> {traces: [summaries]}
//	GET  /v1/traces/{id}                                     -> trace.Trace
//	GET  /metrics                                            -> Prometheus text

// API wraps a Client as an http.Handler.
type API struct {
	client *Client
	mux    *http.ServeMux
	extra  []extraMetrics
	sets   []*metrics.Set
}

// extraMetrics is an additional monitor registry rendered on /metrics, for
// example an analysis pipeline's per-stage monitors.
type extraMetrics struct {
	prefix, label string
	reg           *metrics.Registry
}

var _ http.Handler = (*API)(nil)

// APIOption customizes the HTTP façade.
type APIOption func(*API)

// WithExtraMetrics renders reg's snapshots on /metrics as <prefix>_*
// families labelled <label>="<monitor name>", alongside the client's own
// service metrics.
func WithExtraMetrics(prefix, label string, reg *metrics.Registry) APIOption {
	return func(a *API) {
		if reg != nil {
			a.extra = append(a.extra, extraMetrics{prefix: prefix, label: label, reg: reg})
		}
	}
}

// WithInstruments renders every family registered in set — the substrate
// counters, gauges, and histograms from search, rdf, nlu, intern, and
// pipeline instrumentation — on /metrics alongside the client's own
// families. May be given multiple times; nil sets are ignored.
func WithInstruments(set *metrics.Set) APIOption {
	return func(a *API) {
		if set != nil {
			a.sets = append(a.sets, set)
		}
	}
}

// NewAPI returns the HTTP façade for client.
func NewAPI(client *Client, opts ...APIOption) *API {
	a := &API{client: client, mux: http.NewServeMux()}
	for _, o := range opts {
		o(a)
	}
	a.mux.HandleFunc("POST /v1/invoke", a.handleInvoke)
	a.mux.HandleFunc("POST /v1/invoke-category", a.handleInvokeCategory)
	a.mux.HandleFunc("POST /v1/invoke-all", a.handleInvokeAll)
	a.mux.HandleFunc("POST /v1/rank", a.handleRank)
	a.mux.HandleFunc("GET /v1/services", a.handleServices)
	a.mux.HandleFunc("GET /v1/stats", a.handleStats)
	a.mux.HandleFunc("GET /v1/cache/stats", a.handleCacheStats)
	a.mux.HandleFunc("POST /v1/cache/invalidate", a.handleCacheInvalidate)
	a.mux.HandleFunc("GET /v1/breakers", a.handleBreakers)
	a.mux.HandleFunc("GET /v1/traces", a.handleTraces)
	a.mux.HandleFunc("GET /v1/traces/{id}", a.handleTrace)
	a.mux.HandleFunc("GET /metrics", a.handleMetrics)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

type invokeBody struct {
	Service  string          `json:"service,omitempty"`
	Category string          `json:"category,omitempty"`
	Request  service.Request `json:"request"`
	NoCache  bool            `json:"noCache,omitempty"`
}

func (a *API) decode(w http.ResponseWriter, r *http.Request, into *invokeBody) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(into); err != nil {
		a.writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (a *API) writeErr(w http.ResponseWriter, status int, err error) {
	writeJSONStatus(w, status, map[string]string{"error": err.Error()})
}

func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownService), errors.Is(err, ErrUnknownCategory):
		return http.StatusNotFound
	case errors.Is(err, service.ErrBadRequest):
		return http.StatusBadRequest
	// ErrShed also maps to 429: like a quota rejection it means "back
	// off and retry later", and it must stay cheap — a shed response is
	// the facade's pressure-relief valve under saturation.
	case errors.Is(err, ErrClientQuota), errors.Is(err, service.ErrQuotaExceeded), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	// ErrDeadline first: a deadline-bounded hang usually also wraps the
	// service's unavailability, and the timeout is the sharper diagnosis.
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrBreakerOpen), errors.Is(err, service.ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (a *API) handleInvoke(w http.ResponseWriter, r *http.Request) {
	var body invokeBody
	if !a.decode(w, r, &body) {
		return
	}
	var opts []InvokeOption
	if body.NoCache {
		opts = append(opts, NoCache())
	}
	resp, err := a.client.Invoke(r.Context(), body.Service, body.Request, opts...)
	if err != nil {
		a.writeErr(w, errStatus(err), err)
		return
	}
	writeJSONStatus(w, http.StatusOK, resp)
}

func (a *API) handleInvokeCategory(w http.ResponseWriter, r *http.Request) {
	var body invokeBody
	if !a.decode(w, r, &body) {
		return
	}
	var opts []InvokeOption
	if body.NoCache {
		opts = append(opts, NoCache())
	}
	resp, attempts, err := a.client.InvokeCategory(r.Context(), body.Category, body.Request, opts...)
	if err != nil {
		a.writeErr(w, errStatus(err), err)
		return
	}
	type attemptJSON struct {
		Service  string `json:"service"`
		Attempts int    `json:"attempts"`
		Error    string `json:"error,omitempty"`
	}
	out := struct {
		Response service.Response `json:"response"`
		Attempts []attemptJSON    `json:"attempts"`
	}{Response: resp}
	for _, at := range attempts {
		aj := attemptJSON{Service: at.Service, Attempts: at.Attempts}
		if at.Err != nil {
			aj.Error = at.Err.Error()
		}
		out.Attempts = append(out.Attempts, aj)
	}
	writeJSONStatus(w, http.StatusOK, out)
}

func (a *API) handleInvokeAll(w http.ResponseWriter, r *http.Request) {
	var body invokeBody
	if !a.decode(w, r, &body) {
		return
	}
	results, err := a.client.InvokeAll(r.Context(), body.Category, body.Request)
	if err != nil {
		a.writeErr(w, errStatus(err), err)
		return
	}
	type resultJSON struct {
		Service   string           `json:"service"`
		Response  service.Response `json:"response"`
		Error     string           `json:"error,omitempty"`
		LatencyMS float64          `json:"latencyMs"`
	}
	out := make([]resultJSON, 0, len(results))
	for _, res := range results {
		rj := resultJSON{Service: res.Service, Response: res.Response, LatencyMS: float64(res.Latency.Microseconds()) / 1000}
		if res.Err != nil {
			rj.Error = res.Err.Error()
		}
		out = append(out, rj)
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"results": out})
}

func (a *API) handleRank(w http.ResponseWriter, r *http.Request) {
	var body invokeBody
	if !a.decode(w, r, &body) {
		return
	}
	ranked, err := a.client.Rank(body.Category, body.Request)
	if err != nil {
		a.writeErr(w, errStatus(err), err)
		return
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"ranked": ranked})
}

func (a *API) handleServices(w http.ResponseWriter, r *http.Request) {
	names := a.client.Registry().Names()
	infos := make([]service.Info, 0, len(names))
	for _, n := range names {
		if svc, ok := a.client.Registry().Get(n); ok {
			infos = append(infos, svc.Info())
		}
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"services": infos})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSONStatus(w, http.StatusOK, map[string]any{"services": a.client.Stats()})
}

func (a *API) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSONStatus(w, http.StatusOK, a.client.CacheStats())
}

func (a *API) handleCacheInvalidate(w http.ResponseWriter, r *http.Request) {
	a.client.InvalidateCache()
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) handleBreakers(w http.ResponseWriter, r *http.Request) {
	states := a.client.BreakerStates()
	if states == nil {
		states = []BreakerState{}
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"breakers": states})
}

func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	summaries := a.client.Tracer().Traces()
	if summaries == nil {
		summaries = []trace.Summary{}
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"traces": summaries})
}

func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := a.client.Tracer().Trace(id)
	if !ok {
		a.writeErr(w, http.StatusNotFound, fmt.Errorf("core: no trace %q", id))
		return
	}
	writeJSONStatus(w, http.StatusOK, tr)
}

// breakerStateValue maps breaker states onto a numeric gauge: 0 closed,
// 1 half-open, 2 open, so alerting can threshold on "anything not closed".
func breakerStateValue(state string) float64 {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	default:
		return 0
	}
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	tw := metrics.NewTextWriter(w)
	metrics.WriteSnapshots(tw, "richsdk_service", "service", a.client.Stats())
	for _, ex := range a.extra {
		metrics.WriteSnapshots(tw, ex.prefix, ex.label, ex.reg.Snapshots())
	}
	for _, set := range a.sets {
		set.Expose(tw)
	}

	cs := a.client.CacheStats()
	tw.Family("richsdk_cache_hits_total", "Response-cache hits.", "counter")
	tw.Metric("richsdk_cache_hits_total", float64(cs.Hits))
	tw.Family("richsdk_cache_misses_total", "Response-cache misses.", "counter")
	tw.Metric("richsdk_cache_misses_total", float64(cs.Misses))
	tw.Family("richsdk_cache_evictions_total", "Response-cache evictions.", "counter")
	tw.Metric("richsdk_cache_evictions_total", float64(cs.Evictions))
	tw.Family("richsdk_cache_expired_total", "Expired response-cache entries reclaimed.", "counter")
	tw.Metric("richsdk_cache_expired_total", float64(cs.Expired))
	tw.Family("richsdk_cache_hit_ratio", "Response-cache hit ratio: hits / (hits + misses).", "gauge")
	tw.Metric("richsdk_cache_hit_ratio", cs.HitRatio())
	tw.Family("richsdk_cache_size", "Response-cache entries currently held.", "gauge")
	tw.Metric("richsdk_cache_size", float64(cs.Size))
	shardStats := a.client.CacheShardStats()
	tw.Family("richsdk_cache_shard_size", "Response-cache entries held per shard.", "gauge")
	for i, ss := range shardStats {
		tw.Metric("richsdk_cache_shard_size", float64(ss.Size), metrics.Label{Name: "shard", Value: strconv.Itoa(i)})
	}
	tw.Family("richsdk_cache_shard_evictions_total", "Response-cache evictions per shard.", "counter")
	for i, ss := range shardStats {
		tw.Metric("richsdk_cache_shard_evictions_total", float64(ss.Evictions), metrics.Label{Name: "shard", Value: strconv.Itoa(i)})
	}

	if states := a.client.BreakerStates(); len(states) > 0 {
		tw.Family("richsdk_breaker_state", "Circuit-breaker state: 0 closed, 1 half-open, 2 open.", "gauge")
		for _, st := range states {
			tw.Metric("richsdk_breaker_state", breakerStateValue(st.State), metrics.Label{Name: "service", Value: st.Service})
		}
		tw.Family("richsdk_breaker_consecutive_failures", "Consecutive transient failures counted by the breaker.", "gauge")
		for _, st := range states {
			tw.Metric("richsdk_breaker_consecutive_failures", float64(st.Consecutive), metrics.Label{Name: "service", Value: st.Service})
		}
	}

	if sh := a.client.Shedder(); sh != nil {
		tw.Family("richsdk_shed_inflight", "Admitted calls currently in flight through the shed stage.", "gauge")
		tw.Metric("richsdk_shed_inflight", float64(sh.InFlight()))
		tw.Family("richsdk_shed_limit", "Current adaptive concurrency limit.", "gauge")
		tw.Metric("richsdk_shed_limit", float64(sh.Limit()))
		tw.Family("richsdk_shed_admitted_total", "Calls admitted by the shed stage.", "counter")
		tw.Metric("richsdk_shed_admitted_total", float64(sh.Admitted()))
		tw.Family("richsdk_shed_rejected_total", "Calls shed (fast 429) by the shed stage.", "counter")
		tw.Metric("richsdk_shed_rejected_total", float64(sh.Rejected()))
		tw.Family("richsdk_shed_latency", "Admitted-call latency as seen by the admission controller.", "histogram")
		metrics.WriteHistogram(tw, "richsdk_shed_latency", sh.LatencySnapshot())
	}

	if tr := a.client.Tracer(); tr.Enabled() {
		st := tr.Stats()
		tw.Family("richsdk_traces_sampled_total", "Traces admitted by head sampling.", "counter")
		tw.Metric("richsdk_traces_sampled_total", float64(st.Sampled))
		tw.Family("richsdk_traces_unsampled_total", "Traces rejected by head sampling.", "counter")
		tw.Metric("richsdk_traces_unsampled_total", float64(st.Unsampled))
		tw.Family("richsdk_trace_spans_dropped_total", "Spans dropped by per-trace span budgets.", "counter")
		tw.Metric("richsdk_trace_spans_dropped_total", float64(st.DroppedSpans))
		tw.Family("richsdk_traces_stored", "Traces currently retained in the ring store.", "gauge")
		tw.Metric("richsdk_traces_stored", float64(st.Stored))
	}
	_ = tw.Err()
}
