package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/rank"
	"repro/internal/service"
)

func TestClientConcurrentInvocations(t *testing.T) {
	c := newClient(t, Config{})
	var calls int32
	svc := service.Func{
		Meta: service.Info{Name: "conc", Category: "t"},
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			atomic.AddInt32(&calls, 1)
			return service.Response{Body: []byte(req.Text)}, nil
		},
	}
	if err := c.Register(svc, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// 25 distinct request texts: heavy cache sharing across
				// goroutines.
				req := service.Request{Op: "analyze", Text: fmt.Sprintf("doc-%d", i%25)}
				if _, err := c.Invoke(context.Background(), "conc", req); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Single-flight + cache: exactly one backend call per distinct text.
	if got := atomic.LoadInt32(&calls); got != 25 {
		t.Errorf("backend calls = %d, want 25", got)
	}
	if got := c.Monitor("conc").Count(); got != 25 {
		t.Errorf("monitored calls = %d, want 25", got)
	}
}

func TestInvokeCategoryAsync(t *testing.T) {
	c := newClient(t, Config{})
	svc, _ := countingService("a", "cat", nil)
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	fut := c.InvokeCategoryAsync(context.Background(), "cat", service.Request{Text: "x"})
	resp, err := fut.Get()
	if err != nil || string(resp.Body) != "a:x" {
		t.Errorf("async category = (%q, %v)", resp.Body, err)
	}
	// Unknown category surfaces through the future.
	fut = c.InvokeCategoryAsync(context.Background(), "ghost", service.Request{})
	if _, err := fut.Get(); !errors.Is(err, ErrUnknownCategory) {
		t.Errorf("error = %v, want ErrUnknownCategory", err)
	}
}

func TestCategoryCacheServesAcrossServices(t *testing.T) {
	c := newClient(t, Config{})
	a, aCalls := countingService("a", "dup", nil)
	b, bCalls := countingService("b", "dup", nil)
	if err := c.Register(a, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	req := service.Request{Op: "analyze", Text: "same"}
	for i := 0; i < 5; i++ {
		if _, _, err := c.InvokeCategory(context.Background(), "dup", req); err != nil {
			t.Fatal(err)
		}
	}
	if *aCalls+*bCalls != 1 {
		t.Errorf("backend calls = %d, want 1 (category cache)", *aCalls+*bCalls)
	}
}

func TestInvokeCategoryNoCacheOption(t *testing.T) {
	c := newClient(t, Config{})
	a, aCalls := countingService("a", "nc", nil)
	if err := c.Register(a, WithCacheable()); err != nil {
		t.Fatal(err)
	}
	req := service.Request{Text: "x"}
	for i := 0; i < 3; i++ {
		if _, _, err := c.InvokeCategory(context.Background(), "nc", req, NoCache()); err != nil {
			t.Fatal(err)
		}
	}
	if *aCalls != 3 {
		t.Errorf("calls = %d, want 3 with NoCache", *aCalls)
	}
}

func TestEstimatesWithNoHistoryUseCostOnly(t *testing.T) {
	c := newClient(t, Config{Scorer: rank.Weighted{W: rank.Weights{Beta: 1}}})
	exp := service.Func{
		Meta: service.Info{Name: "expensive", Category: "s", CostPerCall: 10},
		Fn:   func(context.Context, service.Request) (service.Response, error) { return service.Response{}, nil },
	}
	chp := service.Func{
		Meta: service.Info{Name: "cheap", Category: "s", CostPerCall: 1},
		Fn:   func(context.Context, service.Request) (service.Response, error) { return service.Response{}, nil },
	}
	if err := c.Register(exp); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(chp); err != nil {
		t.Fatal(err)
	}
	// Never invoked: latency predictions are unavailable, so estimates
	// carry 0 response time and selection falls back to cost.
	name, err := c.Select("s", service.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if name != "cheap" {
		t.Errorf("Select = %s, want cheap", name)
	}
}

func TestPerCallRetryOverride(t *testing.T) {
	c := newClient(t, Config{})
	var n int32
	flaky := service.Func{
		Meta: service.Info{Name: "f", Category: "t"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			if atomic.AddInt32(&n, 1) < 4 {
				return service.Response{}, service.ErrUnavailable
			}
			return service.Response{}, nil
		},
	}
	// Registered with a single attempt...
	if err := c.Register(flaky, WithRetry(failoverPolicy(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "f", service.Request{}); err == nil {
		t.Fatal("expected failure with 1 attempt")
	}
	// ...but a per-call override of 5 attempts succeeds.
	atomic.StoreInt32(&n, 0)
	if _, err := c.Invoke(context.Background(), "f", service.Request{}, Retry(failoverPolicy(5))); err != nil {
		t.Errorf("override retry failed: %v", err)
	}
}

func TestMonitorRecordsFailuresFromInvoke(t *testing.T) {
	c := newClient(t, Config{})
	dead := service.Func{
		Meta: service.Info{Name: "dead", Category: "t"},
		Fn: func(context.Context, service.Request) (service.Response, error) {
			return service.Response{}, service.ErrUnavailable
		},
	}
	if err := c.Register(dead, WithRetry(failoverPolicy(1))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, _ = c.Invoke(context.Background(), "dead", service.Request{})
	}
	snap := c.Monitor("dead").Snapshot()
	if snap.Count != 4 || snap.Failures != 4 || snap.Availability != 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestCloseStopsAsync(t *testing.T) {
	c, err := NewClient(Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := countingService("s", "t", nil)
	if err := c.Register(svc); err != nil {
		t.Fatal(err)
	}
	c.Close()
	fut := c.InvokeAsync(context.Background(), "s", service.Request{})
	if _, err := fut.Get(); err == nil {
		t.Error("async after Close should fail")
	}
}

func TestInvokeContextCancellation(t *testing.T) {
	c := newClient(t, Config{})
	slow := service.Func{
		Meta: service.Info{Name: "slow", Category: "t"},
		Fn: func(ctx context.Context, _ service.Request) (service.Response, error) {
			select {
			case <-ctx.Done():
				return service.Response{}, ctx.Err()
			case <-time.After(10 * time.Second):
				return service.Response{}, nil
			}
		},
	}
	if err := c.Register(slow); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Invoke(ctx, "slow", service.Request{}); err == nil {
		t.Fatal("expected cancellation")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation not prompt")
	}
}

// failoverPolicy is shorthand for a retry policy with n attempts.
func failoverPolicy(n int) failover.RetryPolicy {
	return failover.RetryPolicy{MaxAttempts: n}
}
