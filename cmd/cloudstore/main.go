// Command cloudstore runs the simulated cloud key-value store used by the
// enhanced data store client (paper §3 and [11]). Latency injection makes
// remote conditions reproducible.
//
// Usage:
//
//	cloudstore -addr :8090 -latency 20ms
//
// Endpoints: PUT/GET/DELETE /kv/{key}, GET /keys.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"repro/internal/kvstore"
	"repro/internal/remotestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudstore:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8090", "listen address")
		latency = flag.Duration("latency", 0, "injected per-request latency")
		file    = flag.String("file", "", "persist to this file (empty = in-memory)")
	)
	flag.Parse()

	var store kvstore.Store
	if *file != "" {
		f, err := kvstore.OpenFile(*file)
		if err != nil {
			return err
		}
		store = f
	} else {
		store = kvstore.NewMemory()
	}
	srv := remotestore.NewServer(store)
	srv.SetLatency(*latency)
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	logger.Info("cloud store listening", "addr", *addr, "latency", *latency, "file", *file)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return hs.ListenAndServe()
}
