// Command cloudstore runs the simulated cloud key-value store used by the
// enhanced data store client (paper §3 and [11]). Latency injection makes
// remote conditions reproducible.
//
// With no -nodes flag it serves a single store node:
//
//	cloudstore -addr :8090 -latency 20ms
//
// With -nodes it instead runs a sharded gateway in front of existing
// store nodes: keys are placed on a consistent-hash ring, writes fan out
// to -replicas successors and return after -write-quorum acks, and reads
// fail over across replicas:
//
//	cloudstore -addr :8080 \
//	    -nodes http://localhost:8090,http://localhost:8091,http://localhost:8092 \
//	    -replicas 2 -write-quorum 2
//
// Endpoints (both modes): PUT/GET/DELETE /kv/{key}, GET /keys — so the
// gateway speaks the same wire protocol as a node and a plain client can
// point at either. The gateway adds POST /sync, GET /cluster (membership
// and breaker states), and GET /metrics (per-node request/error counters,
// fan-out and replication-lag histograms, ring and pending-write gauges).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/remotestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudstore:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8090", "listen address")
		latency = flag.Duration("latency", 0, "injected per-request latency (node mode)")
		file    = flag.String("file", "", "persist to this file (empty = in-memory, node mode)")
		nodes   = flag.String("nodes", "", "comma-separated store node URLs; non-empty switches to gateway mode")
		repl    = flag.Int("replicas", 2, "R: replicas per key (gateway mode)")
		quorum  = flag.Int("write-quorum", 0, "W: acks a write waits for, 0 = R (gateway mode)")
		vnodes  = flag.Int("vnodes", 0, "virtual nodes per member on the ring, 0 = default (gateway mode)")
		seed    = flag.Uint64("seed", 0, "ring placement seed; all gateways of one cluster must agree")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *nodes != "" {
		return runGateway(logger, *addr, strings.Split(*nodes, ","), *repl, *quorum, *vnodes, *seed)
	}

	var store kvstore.Store
	if *file != "" {
		f, err := kvstore.OpenFile(*file)
		if err != nil {
			return err
		}
		store = f
	} else {
		store = kvstore.NewMemory()
	}
	srv := remotestore.NewServer(store)
	srv.SetLatency(*latency)
	logger.Info("cloud store node listening", "addr", *addr, "latency", *latency, "file", *file)
	return serve(*addr, srv.Handler())
}

func runGateway(logger *slog.Logger, addr string, urls []string, replicas, quorum, vnodes int, seed uint64) error {
	for i, u := range urls {
		urls[i] = strings.TrimSpace(u)
	}
	set := metrics.NewSet()
	cl, err := remotestore.NewCluster(remotestore.ClusterConfig{
		Nodes:        urls,
		Replicas:     replicas,
		WriteQuorum:  quorum,
		VirtualNodes: vnodes,
		Seed:         seed,
		Metrics:      set,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	mux := http.NewServeMux()
	mux.Handle("/", cl.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		set.Expose(metrics.NewTextWriter(w))
	})
	logger.Info("cloud store gateway listening", "addr", addr, "nodes", urls,
		"replicas", cl.Replicas(), "write_quorum", cl.WriteQuorum())
	return serve(addr, mux)
}

func serve(addr string, h http.Handler) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return hs.ListenAndServe()
}
