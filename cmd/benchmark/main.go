// Command benchmark runs the experiment harness: every experiment and
// ablation from DESIGN.md's per-experiment index, printed as tables. The
// output of a full run is the source for EXPERIMENTS.md.
//
// Usage:
//
//	benchmark                  # run everything at full scale
//	benchmark -run E5          # run one experiment
//	benchmark -only E16        # same as -run
//	benchmark -scale 0.2       # reduced scale (faster)
//	benchmark -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runID = flag.String("run", "", "run only the experiment with this ID (e.g. E5)")
		only  = flag.String("only", "", "alias for -run")
		scale = flag.Float64("scale", 1.0, "workload scale factor (0 < scale <= 1)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *only != "" {
		if *runID != "" && *runID != *only {
			return fmt.Errorf("-run %s and -only %s disagree; pass one", *runID, *only)
		}
		*runID = *only
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale %v out of (0, 1]", *scale)
	}
	entries := experiments.All()
	if *runID != "" {
		entry, err := experiments.Find(*runID)
		if err != nil {
			return err
		}
		entries = []experiments.Entry{entry}
	}
	// Progress events go to stderr as structured JSON so a long run can be
	// followed (or machine-parsed) without polluting the result tables on
	// stdout.
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	for _, e := range entries {
		logger.Info("experiment starting", "id", e.ID, "title", e.Title, "scale", *scale)
		start := time.Now()
		table, err := e.Run(experiments.Scale(*scale))
		if err != nil {
			logger.Error("experiment failed", "id", e.ID, "error", err)
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		logger.Info("experiment finished", "id", e.ID, "duration", time.Since(start).Round(time.Millisecond))
		if err := table.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
