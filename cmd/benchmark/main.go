// Command benchmark runs the experiment harness: every experiment and
// ablation from DESIGN.md's per-experiment index, printed as tables. The
// output of a full run is the source for EXPERIMENTS.md.
//
// Usage:
//
//	benchmark                  # run everything at full scale
//	benchmark -run E5          # run one experiment
//	benchmark -only E16        # same as -run
//	benchmark -scale 0.2       # reduced scale (faster)
//	benchmark -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runID = flag.String("run", "", "run only the experiment with this ID (e.g. E5)")
		only  = flag.String("only", "", "alias for -run")
		scale = flag.Float64("scale", 1.0, "workload scale factor (0 < scale <= 1)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *only != "" {
		if *runID != "" && *runID != *only {
			return fmt.Errorf("-run %s and -only %s disagree; pass one", *runID, *only)
		}
		*runID = *only
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale %v out of (0, 1]", *scale)
	}
	entries := experiments.All()
	if *runID != "" {
		entry, err := experiments.Find(*runID)
		if err != nil {
			return err
		}
		entries = []experiments.Entry{entry}
	}
	for _, e := range entries {
		table, err := e.Run(experiments.Scale(*scale))
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
