// Command richsdk-server runs the rich SDK behind its HTTP façade so that
// applications written in any language can use it (paper §2). It registers
// the built-in simulated cognitive services — three NLU engines, three
// search engines over a generated web corpus, and a spell checker — and
// serves the SDK API.
//
// Usage:
//
//	richsdk-server -addr :8080 -corpus-docs 500 -seed 42 \
//	    -trace-sample 1 -log-level info -debug-addr 127.0.0.1:6060
//
// Endpoints (JSON): POST /v1/invoke, /v1/invoke-category, /v1/invoke-all,
// /v1/rank; GET /v1/services, /v1/stats, /v1/cache/stats, /v1/breakers,
// /v1/traces, /v1/traces/{id}; POST /v1/cache/invalidate. GET /metrics
// serves Prometheus text exposition; -debug-addr serves net/http/pprof on a
// separate listener. Logs are structured JSON on stderr, correlated with
// trace and span IDs.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/nlu"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/spell"
	"repro/internal/trace"
	"repro/internal/vision"
	"repro/internal/webcorpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richsdk-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		corpusDocs = flag.Int("corpus-docs", 500, "synthetic web corpus size")
		seed       = flag.Int64("seed", 42, "corpus generation seed")
		cacheTTL   = flag.Duration("cache-ttl", 5*time.Minute, "response cache TTL")

		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive transient failures that trip a service's circuit breaker (0 disables)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 15*time.Second, "how long an open breaker rejects calls before probing")
		deadlineFactor   = flag.Float64("deadline-factor", 0, "per-call deadline as a multiple of predicted latency (0 disables)")
		deadlineFloor    = flag.Duration("deadline-floor", 250*time.Millisecond, "minimum per-call deadline when -deadline-factor is set")
		shedTarget       = flag.Duration("shed-target", 0, "admitted-call p99 target for adaptive load shedding (0 disables the shed stage)")
		shedMaxInFlight  = flag.Int("shed-max-inflight", 256, "concurrency ceiling for the adaptive shed stage")

		traceSample = flag.Float64("trace-sample", 1, "fraction of invocations to trace, 0..1 (0 disables tracing)")
		traceKeep   = flag.Int("trace-keep", 128, "recent traces retained for /v1/traces")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		debugAddr   = flag.String("debug-addr", "", "listen address for net/http/pprof (empty disables)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.WithSampleRate(*traceSample), trace.WithCapacity(*traceKeep))
		defer tracer.Close()
	}

	client, err := core.NewClient(core.Config{
		CacheTTL: *cacheTTL,
		Breaker:  core.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		Deadline: core.DeadlineConfig{Factor: *deadlineFactor, Floor: *deadlineFloor},
		Shed:     core.ShedConfig{TargetP99: *shedTarget, MaxInFlight: *shedMaxInFlight},
		Tracer:   tracer,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	// One shared instrument set carries the substrate metrics (search,
	// NLU, intern dictionaries) onto /metrics.
	instruments := metrics.NewSet()
	if err := registerBuiltins(client, instruments, *corpusDocs, *seed); err != nil {
		return err
	}

	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux; serve it on its own
		// listener so profiling never shares a port with the public API.
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := dbg.ListenAndServe(); err != nil {
				logger.Error("pprof server failed", "error", err)
			}
		}()
	}

	logger.Info("rich SDK HTTP facade listening",
		"addr", *addr,
		"services", len(client.Registry().Names()),
		"trace_sample", *traceSample,
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           accessLog(logger, tracer, core.NewAPI(client, core.WithInstruments(instruments))),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

// newLogger builds the process logger: structured JSON on stderr at the
// requested level, every record stamped with trace/span IDs when emitted
// under a traced request.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	inner := slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv})
	return slog.New(trace.NewLogHandler(inner)), nil
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// accessLog wraps the API with a request-level root span (so invocation
// traces nest under the serving request) and a structured access-log line
// carrying the trace ID. The observability surface itself — /metrics and
// /v1/traces — is exempt, so scraping does not flood the trace store.
func accessLog(logger *slog.Logger, tracer *trace.Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/v1/traces") {
			next.ServeHTTP(w, r)
			return
		}
		ctx, sp := tracer.Start(r.Context(), "http "+r.URL.Path)
		sp.SetAttr("method", r.Method)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		sp.SetInt("status", int64(rec.status))
		logger.InfoContext(ctx, "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
		)
		sp.End()
	})
}

// registerBuiltins wires the simulated cognitive services into the SDK with
// realistic latency, cost, and quality profiles, instrumenting the search
// and NLU substrates into set.
func registerBuiltins(client *core.Client, set *metrics.Set, corpusDocs int, seed int64) error {
	// Three NLU vendors with different latency/cost/quality trade-offs.
	nluProfiles := []struct {
		profile nlu.Profile
		latency simsvc.LatencyModel
		cost    float64
	}{
		{nlu.ProfileAlpha, simsvc.Lognormal{Median: 80 * time.Millisecond, Sigma: 0.3}, 0.003},
		{nlu.ProfileBeta, simsvc.Lognormal{Median: 40 * time.Millisecond, Sigma: 0.3}, 0.002},
		{nlu.ProfileGamma, simsvc.Lognormal{Median: 15 * time.Millisecond, Sigma: 0.4}, 0.0005},
	}
	nlu.Instrument(set)
	for i, p := range nluProfiles {
		engine := nlu.NewEngine(p.profile)
		info := service.Info{Name: p.profile.Name, Category: "nlu", CostPerCall: p.cost}
		backend := engine.Service(info)
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: p.latency,
			Seed:    seed + int64(i),
			Handler: backend.Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			return err
		}
	}
	// Three search engines over one generated web corpus. The index is
	// built with expansion tables so clients can pass expand=true; the
	// engines' tunings differ in how aggressively they use them.
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, NumDocs: corpusDocs})
	index := search.BuildIndex(corpus, search.WithExpansion(lexicon.PMIConfig{}), search.WithMetrics(set))
	searchEngines := []struct {
		name   string
		params search.Params
		lat    time.Duration
	}{
		{"search-g", search.TuningG, 30 * time.Millisecond},
		{"search-b", search.TuningB, 45 * time.Millisecond},
		{"search-y", search.TuningY, 60 * time.Millisecond},
	}
	for i, se := range searchEngines {
		engine := search.NewEngine(se.name, index, se.params)
		info := service.Info{Name: se.name, Category: "search", CostPerCall: 0.001}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Lognormal{Median: se.lat, Sigma: 0.25},
			Seed:    seed + 100 + int64(i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			return err
		}
	}
	// A spell-check service.
	checker := spell.NewChecker(lexicon.Dictionary(), nil)
	spellInfo := service.Info{Name: "spell", Category: "spell"}
	if err := client.Register(checker.Service(spellInfo), core.WithCacheable()); err != nil {
		return err
	}
	// Two visual-recognition vendors.
	visionProfiles := []struct {
		profile vision.Profile
		lat     time.Duration
		cost    float64
	}{
		{vision.ProfileSharp, 120 * time.Millisecond, 0.006},
		{vision.ProfileFast, 35 * time.Millisecond, 0.001},
	}
	for i, vp := range visionProfiles {
		engine := vision.NewEngine(vp.profile)
		info := service.Info{Name: vp.profile.Name, Category: "vision", CostPerCall: vp.cost}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Lognormal{Median: vp.lat, Sigma: 0.3},
			Seed:    seed + 200 + int64(i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			return err
		}
	}
	return nil
}
