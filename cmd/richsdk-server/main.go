// Command richsdk-server runs the rich SDK behind its HTTP façade so that
// applications written in any language can use it (paper §2). It registers
// the built-in simulated cognitive services — three NLU engines, three
// search engines over a generated web corpus, and a spell checker — and
// serves the SDK API.
//
// Usage:
//
//	richsdk-server -addr :8080 -corpus-docs 500 -seed 42
//
// Endpoints (JSON): POST /v1/invoke, /v1/invoke-category, /v1/invoke-all,
// /v1/rank; GET /v1/services, /v1/stats, /v1/cache/stats, /v1/breakers;
// POST /v1/cache/invalidate.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/spell"
	"repro/internal/vision"
	"repro/internal/webcorpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richsdk-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		corpusDocs = flag.Int("corpus-docs", 500, "synthetic web corpus size")
		seed       = flag.Int64("seed", 42, "corpus generation seed")
		cacheTTL   = flag.Duration("cache-ttl", 5*time.Minute, "response cache TTL")

		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive transient failures that trip a service's circuit breaker (0 disables)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 15*time.Second, "how long an open breaker rejects calls before probing")
		deadlineFactor   = flag.Float64("deadline-factor", 0, "per-call deadline as a multiple of predicted latency (0 disables)")
		deadlineFloor    = flag.Duration("deadline-floor", 250*time.Millisecond, "minimum per-call deadline when -deadline-factor is set")
	)
	flag.Parse()

	client, err := core.NewClient(core.Config{
		CacheTTL: *cacheTTL,
		Breaker:  core.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		Deadline: core.DeadlineConfig{Factor: *deadlineFactor, Floor: *deadlineFloor},
	})
	if err != nil {
		return err
	}
	defer client.Close()
	if err := registerBuiltins(client, *corpusDocs, *seed); err != nil {
		return err
	}

	log.Printf("rich SDK HTTP facade listening on %s (%d services registered)",
		*addr, len(client.Registry().Names()))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           core.NewAPI(client),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

// registerBuiltins wires the simulated cognitive services into the SDK with
// realistic latency, cost, and quality profiles.
func registerBuiltins(client *core.Client, corpusDocs int, seed int64) error {
	// Three NLU vendors with different latency/cost/quality trade-offs.
	nluProfiles := []struct {
		profile nlu.Profile
		latency simsvc.LatencyModel
		cost    float64
	}{
		{nlu.ProfileAlpha, simsvc.Lognormal{Median: 80 * time.Millisecond, Sigma: 0.3}, 0.003},
		{nlu.ProfileBeta, simsvc.Lognormal{Median: 40 * time.Millisecond, Sigma: 0.3}, 0.002},
		{nlu.ProfileGamma, simsvc.Lognormal{Median: 15 * time.Millisecond, Sigma: 0.4}, 0.0005},
	}
	for i, p := range nluProfiles {
		engine := nlu.NewEngine(p.profile)
		info := service.Info{Name: p.profile.Name, Category: "nlu", CostPerCall: p.cost}
		backend := engine.Service(info)
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: p.latency,
			Seed:    seed + int64(i),
			Handler: backend.Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			return err
		}
	}
	// Three search engines over one generated web corpus.
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, NumDocs: corpusDocs})
	index := search.BuildIndex(corpus)
	searchEngines := []struct {
		name   string
		params search.Params
		lat    time.Duration
	}{
		{"search-g", search.TuningG, 30 * time.Millisecond},
		{"search-b", search.TuningB, 45 * time.Millisecond},
		{"search-y", search.TuningY, 60 * time.Millisecond},
	}
	for i, se := range searchEngines {
		engine := search.NewEngine(se.name, index, se.params)
		info := service.Info{Name: se.name, Category: "search", CostPerCall: 0.001}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Lognormal{Median: se.lat, Sigma: 0.25},
			Seed:    seed + 100 + int64(i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			return err
		}
	}
	// A spell-check service.
	checker := spell.NewChecker(lexicon.Dictionary(), nil)
	spellInfo := service.Info{Name: "spell", Category: "spell"}
	if err := client.Register(checker.Service(spellInfo), core.WithCacheable()); err != nil {
		return err
	}
	// Two visual-recognition vendors.
	visionProfiles := []struct {
		profile vision.Profile
		lat     time.Duration
		cost    float64
	}{
		{vision.ProfileSharp, 120 * time.Millisecond, 0.006},
		{vision.ProfileFast, 35 * time.Millisecond, 0.001},
	}
	for i, vp := range visionProfiles {
		engine := vision.NewEngine(vp.profile)
		info := service.Info{Name: vp.profile.Name, Category: "vision", CostPerCall: vp.cost}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Lognormal{Median: vp.lat, Sigma: 0.3},
			Seed:    seed + 200 + int64(i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			return err
		}
	}
	return nil
}
