// Command loadgen is the chaos/load harness CLI. It builds an in-process
// rig — a simulated cognitive backend behind the rich SDK's HTTP facade —
// and drives it with the loadgen package's closed- or open-loop arrival
// models while an optional seeded chaos schedule storms the backend. The
// run prints a classification report (goodput, shed, timeouts, status
// histogram, latency quantiles), so a single command answers "what does
// this facade do at N-times saturation under faults?".
//
// Everything runs in one process over httptest recorders: no sockets, no
// kernel noise, and full determinism for a given -seed, which is what makes
// -smoke usable as a CI gate.
//
// Usage:
//
//	loadgen -workers 256 -duration 3s -timeout 25ms -storm \
//	    -shed-target 10ms -shed-max-inflight 64
//	loadgen -arrival open -rate 4000 -workers 64 -duration 2s
//	loadgen -smoke    # short deterministic run; non-zero exit on failure
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/simsvc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		arrival  = flag.String("arrival", "closed", "arrival model: closed or open")
		workers  = flag.Int("workers", 64, "closed-loop workers / open-loop outstanding bound")
		rate     = flag.Float64("rate", 1000, "open-loop arrival rate, requests/second")
		duration = flag.Duration("duration", 2*time.Second, "run length")
		timeout  = flag.Duration("timeout", 25*time.Millisecond, "per-request client budget (0 disables)")
		pause    = flag.Duration("shed-pause", 2*time.Millisecond, "closed-loop worker pause after a 429 (0 spins)")
		seed     = flag.Int64("seed", 7, "seed for request generation and chaos scheduling")

		svcLatency  = flag.Duration("svc-latency", 2*time.Millisecond, "backend service time per call")
		svcCapacity = flag.Int("svc-capacity", 4, "backend parallelism (0 = unbounded)")

		storm  = flag.Bool("storm", false, "inject a seeded chaos schedule (5xx bursts, latency spikes, down-flaps)")
		storms = flag.Int("storms", 3, "fault storms per chaos type when -storm is set")

		shedTarget = flag.Duration("shed-target", 0, "admitted p99 target for the adaptive shed stage (0 disables)")
		shedMax    = flag.Int("shed-max-inflight", 64, "shed stage concurrency ceiling")

		smoke = flag.Bool("smoke", false, "short deterministic smoke run for CI; exits non-zero on failure")
	)
	flag.Parse()

	if *smoke {
		return runSmoke()
	}

	var model loadgen.Arrival
	switch *arrival {
	case "closed":
		model = loadgen.ClosedLoop
	case "open":
		model = loadgen.OpenLoop
	default:
		return fmt.Errorf("unknown -arrival %q (want closed or open)", *arrival)
	}

	svc, api, client, err := buildRig(*svcLatency, *svcCapacity, *seed, *shedTarget, *shedMax)
	if err != nil {
		return err
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *storm {
		faults := []loadgen.Fault{
			{Name: "failburst", On: func() { svc.SetFailRate(0.7) }, Off: func() { svc.SetFailRate(0) }},
			{Name: "latspike", On: func() { svc.SetExtraLatency(20 * *svcLatency) }, Off: func() { svc.SetExtraLatency(0) }},
			{Name: "flap", On: func() { svc.SetDown(true) }, Off: func() { svc.SetDown(false) }},
		}
		sched := loadgen.RandomStorms(*seed, *duration, *storms, faults)
		for _, ev := range sched.Events() {
			fmt.Printf("chaos: t=%-10v %s\n", ev.At.Round(time.Millisecond), ev.Name)
		}
		go sched.Play(ctx)
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Handler:    api,
		NewRequest: loadgen.InvokeRequest("cog-primary", 1.0),
		Arrival:    model,
		Workers:    *workers,
		Rate:       *rate,
		Duration:   *duration,
		Timeout:    *timeout,
		ShedPause:  *pause,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	printReport(rep, client)
	return nil
}

// buildRig assembles the in-process backend + facade: one simulated
// cognitive service with bounded parallelism behind a client configured
// with the full resilience chain (breaker, predicted deadlines, jittered
// retries, and — when target > 0 — the adaptive shed stage).
func buildRig(latency time.Duration, capacity int, seed int64, shedTarget time.Duration, shedMax int) (*simsvc.Service, http.Handler, *core.Client, error) {
	svc := simsvc.New(simsvc.Config{
		Info:     service.Info{Name: "cog-primary", Category: "cog"},
		Latency:  simsvc.Constant{D: latency},
		Capacity: capacity,
		Seed:     seed,
	})
	cfg := core.Config{
		Breaker:  core.BreakerConfig{Threshold: 8, Cooldown: 150 * time.Millisecond},
		Deadline: core.DeadlineConfig{Factor: 4, Floor: 15 * time.Millisecond, Cap: 50 * time.Millisecond},
		DefaultRetry: failover.RetryPolicy{
			MaxAttempts: 2,
			Backoff:     2 * time.Millisecond,
			Jitter:      failover.FullJitter,
		},
		Shed: core.ShedConfig{TargetP99: shedTarget, MaxInFlight: shedMax, MinInFlight: 2,
			Window: 25 * time.Millisecond},
	}
	client, err := core.NewClient(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := client.Register(svc); err != nil {
		client.Close()
		return nil, nil, nil, err
	}
	return svc, core.NewAPI(client), client, nil
}

func printReport(rep loadgen.Report, client *core.Client) {
	fmt.Printf("elapsed   %v\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("sent      %d\n", rep.Sent)
	fmt.Printf("ok        %d (%.0f/s goodput, %.1f%% of sent)\n", rep.OK, rep.Goodput(), 100*rep.OKRate())
	fmt.Printf("shed      %d\n", rep.Shed)
	fmt.Printf("timeouts  %d\n", rep.Timeouts)
	fmt.Printf("dropped   %d\n", rep.Dropped)
	codes := make([]int, 0, len(rep.Status))
	for c := range rep.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("status %d: %d\n", c, rep.Status[c])
	}
	if rep.OKLatency.Count > 0 {
		fmt.Printf("ok latency  p50 %v  p99 %v\n",
			rep.OKLatency.Quantile(0.50).Round(time.Microsecond),
			rep.OKLatency.Quantile(0.99).Round(time.Microsecond))
	}
	if sh := client.Shedder(); sh != nil {
		fmt.Printf("shed stage  limit %d, admitted %d, rejected %d\n",
			sh.Limit(), sh.Admitted(), sh.Rejected())
	}
}

// runSmoke is the CI gate: a short saturating closed-loop burst with the
// shed stage on. It fails if the rig produced no traffic, no goodput, or
// no shedding — i.e. if any piece of the harness stopped doing its job.
func runSmoke() error {
	svc, api, client, err := buildRig(2*time.Millisecond, 2, 42, 10*time.Millisecond, 16)
	if err != nil {
		return err
	}
	defer client.Close()
	_ = svc
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Handler:    api,
		NewRequest: loadgen.InvokeRequest("cog-primary", 1.0),
		Arrival:    loadgen.ClosedLoop,
		Workers:    64,
		Duration:   500 * time.Millisecond,
		Timeout:    25 * time.Millisecond,
		ShedPause:  time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		return err
	}
	printReport(rep, client)
	switch {
	case rep.Sent == 0:
		return fmt.Errorf("smoke: no requests sent")
	case rep.OK == 0:
		return fmt.Errorf("smoke: zero goodput (sent %d)", rep.Sent)
	case rep.Shed == 0:
		return fmt.Errorf("smoke: 64 workers into a 2-wide backend shed nothing — admission control inactive")
	}
	fmt.Println("smoke: ok")
	return nil
}
