// Command kbshell is an interactive shell over the personalized knowledge
// base (paper §3): ingest CSV files, run SQL, enter facts, run SPARQL-like
// queries, infer new facts, disambiguate entities, spell-check text, and
// run regressions — the paper's Figure 5 loop at a prompt.
//
// Usage:
//
//	kbshell [-dir DIR] [-passphrase P] [-compress]
//
// Commands (type "help" at the prompt):
//
//	ingest <table> <file.csv>       load a CSV file
//	sql <statement>                 run SQL
//	fact <subj> <pred> <obj...>     add an RDF fact
//	query <sparql>                  SELECT ?x WHERE { ... }
//	infer                           forward-chain all reasoners
//	resolve <surface...>            disambiguate an entity name
//	canon <table> <column>          canonicalize a column in place
//	spell <text...>                 spell-check text
//	regress <table> <x> <y>         fit y = a + b*x
//	analyze <table> <x> <y> <at>    regression -> RDF facts -> inferable
//	tables                          list tables
//	export <table>                  write <table>.csv into the KB dir
//	quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flag"

	"repro/internal/kb"
	"repro/internal/rdbms"
)

func main() {
	var (
		dir        = flag.String("dir", "kbdata", "knowledge base directory")
		passphrase = flag.String("passphrase", "", "encrypt persisted payloads")
		compress   = flag.Bool("compress", false, "compress persisted payloads")
	)
	flag.Parse()
	base, err := kb.New(kb.Config{Dir: *dir, Passphrase: *passphrase, Compress: *compress})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbshell:", err)
		os.Exit(1)
	}
	fmt.Println("personalized knowledge base shell — type 'help'")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("kb> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := dispatch(base, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func dispatch(base *kb.KB, line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Println("commands: ingest sql fact query infer resolve canon spell regress analyze tables export quit")
		return nil
	case "ingest":
		table, file, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("usage: ingest <table> <file.csv>")
		}
		t, err := base.IngestCSVFile(table, strings.TrimSpace(file))
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d rows into %s\n", t.Len(), table)
		return nil
	case "sql":
		rs, err := base.SQL(rest)
		if err != nil {
			return err
		}
		printResult(rs)
		return nil
	case "fact":
		fields := strings.Fields(rest)
		if len(fields) < 3 {
			return fmt.Errorf("usage: fact <subject> <predicate> <object...>")
		}
		return base.AddFact(fields[0], fields[1], strings.Join(fields[2:], " "))
	case "query":
		res, err := base.Query(rest)
		if err != nil {
			return err
		}
		fmt.Println(strings.Join(res.Vars, "\t"))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, t := range row {
				parts[i] = t.Value
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return nil
	case "infer":
		n, err := base.Infer()
		if err != nil {
			return err
		}
		fmt.Printf("derived %d new facts (%d total)\n", n, base.Graph().Len())
		return nil
	case "resolve":
		r, ok := base.Disambiguate(rest)
		if !ok {
			fmt.Println("unresolved")
			return nil
		}
		fmt.Printf("%s (%s, kind %s)\n", r.EntityID, r.Name, r.Kind)
		for _, link := range []string{r.Website, r.DBpedia, r.Yago} {
			if link != "" {
				fmt.Println(" ", link)
			}
		}
		return nil
	case "canon":
		table, col, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("usage: canon <table> <column>")
		}
		resolved, unresolved, err := base.CanonicalizeColumn(table, strings.TrimSpace(col))
		if err != nil {
			return err
		}
		fmt.Printf("resolved %d surface forms, %d left as-is\n", resolved, unresolved)
		return nil
	case "spell":
		corrs := base.SpellCheck(rest)
		if len(corrs) == 0 {
			fmt.Println("no issues")
			return nil
		}
		for _, c := range corrs {
			if c.Suggestion != "" {
				fmt.Printf("%s -> %s\n", c.Word, c.Suggestion)
			} else {
				fmt.Printf("%s (no suggestion)\n", c.Word)
			}
		}
		return nil
	case "regress":
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return fmt.Errorf("usage: regress <table> <xcol> <ycol>")
		}
		m, err := base.Regress(fields[0], fields[1], fields[2])
		if err != nil {
			return err
		}
		fmt.Printf("%s = %.4f + %.4f*%s  (R2 %.3f, n %d)\n", fields[2], m.Intercept, m.Slope, fields[1], m.R2, m.N)
		return nil
	case "analyze":
		fields := strings.Fields(rest)
		if len(fields) != 4 {
			return fmt.Errorf("usage: analyze <table> <xcol> <ycol> <predict-at>")
		}
		at, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return fmt.Errorf("bad predict-at %q: %w", fields[3], err)
		}
		m, err := base.AnalyzeAndStore(fields[0], fields[1], fields[2], "kb:", []float64{at})
		if err != nil {
			return err
		}
		fmt.Printf("stored analysis facts; predicted %s(%v) = %.4f\n", fields[2], at, m.Predict(at))
		return nil
	case "tables":
		for _, n := range base.DB().Names() {
			t, err := base.DB().Table(n)
			if err != nil {
				return err
			}
			fmt.Printf("%s (%d rows)\n", n, t.Len())
		}
		return nil
	case "export":
		path, err := base.ExportTableCSV(rest)
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func printResult(rs rdbms.ResultSet) {
	if len(rs.Columns) == 0 {
		fmt.Println("ok")
		return
	}
	fmt.Println(strings.Join(rs.Columns, "\t"))
	for _, row := range rs.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rs.Rows))
}
