package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kb"
)

func shellKB(t *testing.T) *kb.KB {
	t.Helper()
	base, err := kb.New(kb.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestDispatchFullSession(t *testing.T) {
	base := shellKB(t)
	csvPath := filepath.Join(t.TempDir(), "sales.csv")
	csv := "country,year,revenue\nUSA,2024,100\nAmerica,2025,120\nGermany,2024,80\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	// A realistic session, command by command.
	session := []string{
		"help",
		"ingest sales " + csvPath,
		"sql SELECT COUNT(*) FROM sales",
		"canon sales country",
		"sql SELECT country, COUNT(*) FROM sales GROUP BY country",
		"fact kb:acme kb:locatedIn country:us",
		"query SELECT ?w WHERE { <kb:acme> <kb:locatedIn> ?w }",
		"infer",
		"resolve United States of America",
		"spell the markte improved",
		"regress sales year revenue",
		"analyze sales year revenue 2026",
		"tables",
		"export sales",
	}
	for _, line := range session {
		if err := dispatch(base, line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	// The session's effects are real: canonicalized countries, stored
	// facts, regression facts.
	rs, err := base.SQL("SELECT COUNT(*) FROM sales WHERE country = 'country:us'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int != 2 {
		t.Errorf("canonicalized US rows = %v, want 2", rs.Rows[0][0])
	}
	res, err := base.Query("SELECT ?a WHERE { ?a <kb:trend> \"increasing\" }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("analyze did not store trend facts: %v", res.Rows)
	}
}

func TestDispatchErrors(t *testing.T) {
	base := shellKB(t)
	bad := []string{
		"frobnicate",
		"ingest onlytable",
		"ingest t /nonexistent/file.csv",
		"sql SELEC nope",
		"fact too few",
		"query SELECT bad syntax",
		"canon missingcolumn",
		"regress t x",
		"analyze t x y notanumber",
		"export ghost-table",
	}
	for _, line := range bad {
		if err := dispatch(base, line); err == nil {
			t.Errorf("dispatch(%q) succeeded, want error", line)
		}
	}
}

func TestDispatchResolveUnknownIsNotError(t *testing.T) {
	base := shellKB(t)
	if err := dispatch(base, "resolve Atlantis"); err != nil {
		t.Errorf("unresolved entity should print, not error: %v", err)
	}
	if err := dispatch(base, "spell all good words here"); err != nil {
		t.Errorf("clean spell check errored: %v", err)
	}
}

func TestDispatchHandlesQuotedStrings(t *testing.T) {
	base := shellKB(t)
	if err := dispatch(base, "sql CREATE TABLE q (s TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(base, "sql INSERT INTO q (s) VALUES ('it''s fine')"); err != nil {
		t.Fatal(err)
	}
	rs, err := base.SQL("SELECT s FROM q")
	if err != nil || !strings.Contains(rs.Rows[0][0].Text, "it's") {
		t.Errorf("quoted insert = %+v, %v", rs, err)
	}
}
