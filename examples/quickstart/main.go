// Quickstart: register two NLU services with different latency and cost,
// invoke one through the rich SDK (with caching and retries), invoke the
// whole category with ranked failover, plug a custom middleware stage into
// the invocation pipeline, and inspect the monitoring data and traces the
// SDK collected along the way.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/nlu"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A custom middleware stage: every invocation — cache hits included —
	// passes through it, like an http.RoundTripper wrapper. Client-wide
	// here; core.WithMiddleware scopes a stage to one registration and
	// core.WithInvokeMiddleware to one call.
	var pipelineCalls atomic.Int64
	audit := func(next core.Invoker) core.Invoker {
		return func(ctx context.Context, call *core.Call) (service.Response, error) {
			pipelineCalls.Add(1)
			return next(ctx, call)
		}
	}
	// Trace every invocation; each one becomes a retrievable span tree.
	tracer := trace.New()
	defer tracer.Close()

	client, err := core.NewClient(core.Config{
		CacheTTL:   time.Minute,
		Middleware: []core.Middleware{audit},
		Tracer:     tracer,
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// Two simulated NLU vendors: premium (slow, accurate, expensive) and
	// budget (fast, noisier, cheap). Both expose the same "nlu" category
	// so the SDK can rank and fail over between them.
	register := func(profile nlu.Profile, median time.Duration, cost float64, seed int64) error {
		engine := nlu.NewEngine(profile)
		info := service.Info{Name: profile.Name, Category: "nlu", CostPerCall: cost}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Lognormal{Median: median, Sigma: 0.3},
			Seed:    seed,
			Handler: engine.Service(info).Invoke,
		})
		return client.Register(sim,
			core.WithCacheable(), // analyses are deterministic: safe to cache
			core.WithRetry(failover.RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond}),
		)
	}
	if err := register(nlu.ProfileAlpha, 60*time.Millisecond, 0.004, 1); err != nil {
		return err
	}
	if err := register(nlu.ProfileGamma, 15*time.Millisecond, 0.0005, 2); err != nil {
		return err
	}

	doc := "Acme Corporation reported excellent quarterly earnings, and analysts " +
		"in Germany praised the remarkable growth of the technology market."
	ctx := context.Background()

	// 1. Direct synchronous invocation of a specific service.
	resp, err := client.Invoke(ctx, "nlu-alpha", service.Request{Op: "analyze", Text: doc})
	if err != nil {
		return err
	}
	analysis, err := nlu.DecodeAnalysis(resp)
	if err != nil {
		return err
	}
	fmt.Println("== direct invocation (nlu-alpha) ==")
	fmt.Printf("sentiment %.2f, entities %v\n", analysis.Sentiment, analysis.EntityIDs())

	// 2. The same request again: served from the response cache, no
	// remote call.
	start := time.Now()
	if _, err := client.Invoke(ctx, "nlu-alpha", service.Request{Op: "analyze", Text: doc}); err != nil {
		return err
	}
	fmt.Printf("repeat call took %v (cache hit ratio %.2f)\n",
		time.Since(start).Round(time.Microsecond), client.CacheStats().HitRatio())

	// 3. Asynchronous invocation with a ListenableFuture-style callback.
	fut := client.InvokeAsync(ctx, "nlu-gamma", service.Request{Op: "analyze", Text: doc})
	fut.Listen(func(resp service.Response, err error) {
		if err != nil {
			fmt.Println("async failed:", err)
			return
		}
		a, _ := nlu.DecodeAnalysis(resp)
		fmt.Printf("async callback: %s found %d entity mentions\n", a.Engine, len(a.Entities))
	})
	if _, err := fut.Get(); err != nil {
		return err
	}

	// 4. Category invocation: the SDK ranks both services (latency, cost,
	// quality collected so far) and tries them in order.
	resp, attempts, err := client.InvokeCategory(ctx, "nlu", service.Request{Op: "analyze", Text: "Globex Industries faces a lawsuit."})
	if err != nil {
		return err
	}
	a, _ := nlu.DecodeAnalysis(resp)
	fmt.Printf("category invocation answered by %s after %d service attempt(s)\n", a.Engine, len(attempts))

	// 5. What the SDK learned while we worked.
	fmt.Printf("custom middleware observed %d invocations through the pipeline\n", pipelineCalls.Load())
	fmt.Println("== collected monitoring data ==")
	for _, s := range client.Stats() {
		fmt.Printf("%-10s calls %-3d availability %.2f mean %v p95 %v\n",
			s.Name, s.Count, s.Availability,
			s.MeanLatency.Round(time.Millisecond), s.P95Latency.Round(time.Millisecond))
	}

	// 6. Every invocation above left a trace: a root span plus one child
	// per middleware stage it passed through. Print the oldest one — the
	// cold nlu-alpha call — as an indented tree.
	fmt.Println("== trace of the first invocation ==")
	traces := tracer.Traces()
	first := traces[len(traces)-1] // Traces() is newest-first
	full, _ := tracer.Trace(first.ID)
	printTrace(full)
	return nil
}

// printTrace renders a span tree depth-first with indentation, durations,
// and attributes — the plain-text equivalent of GET /v1/traces/{id}.
func printTrace(tr *trace.Trace) {
	children := map[int][]trace.SpanData{}
	var root trace.SpanData
	for _, s := range tr.Spans {
		if s.ParentID == 0 {
			root = s
			continue
		}
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	var walk func(s trace.SpanData, depth int)
	walk = func(s trace.SpanData, depth int) {
		var attrs []string
		for _, a := range s.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		sort.Strings(attrs)
		fmt.Printf("%s%-12s %8.3fms  %s\n",
			strings.Repeat("  ", depth), s.Name, s.DurationMS, strings.Join(attrs, " "))
		kids := children[s.ID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}
