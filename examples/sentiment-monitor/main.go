// Sentiment monitor: the paper's motivating analytics workload — "we have
// been using the rich SDK to determine how favorably people, companies, and
// other entities are represented on the Web" (§2.2).
//
// The Fig. 3 loop — search the (synthetic) web for a topic, fetch each
// result's HTML over real local HTTP, extract text, analyze every document
// with an NLU service, and aggregate per-entity sentiment — runs on the
// streaming internal/pipeline engine with a bounded fetch/analyze fan-out.
// Search and analysis go through the rich SDK client, so caching and
// monitoring apply; the fetched documents, the query, and every analysis
// are persisted so the run can be repeated without re-invoking anything
// (§2.2).
//
//	go run ./examples/sentiment-monitor
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/trace"
	"repro/internal/webcorpus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A synthetic web served over real HTTP.
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 2026, NumDocs: 300})
	web := httptest.NewServer(corpus.Handler())
	defer web.Close()

	// A search engine over that web and an NLU engine, both registered on
	// the rich SDK client as simulated remote services. The tracer turns
	// each pipeline run into one retrievable trace tree.
	tracer := trace.New(trace.WithMaxSpans(4096))
	defer tracer.Close()
	client, err := core.NewClient(core.Config{CacheTTL: time.Minute, Tracer: tracer})
	if err != nil {
		return err
	}
	defer client.Close()
	index := search.BuildIndex(corpus, search.WithExpansion(lexicon.PMIConfig{}))
	sengine := search.NewEngine("search-g", index, search.TuningG)
	sinfo := service.Info{Name: "search-g", Category: "search"}
	if err := client.Register(simsvc.New(simsvc.Config{
		Info:    sinfo,
		Latency: simsvc.Constant{D: 2 * time.Millisecond},
		Handler: sengine.Service(sinfo).Invoke,
	}), core.WithCacheable()); err != nil {
		return err
	}
	nluEngine := nlu.NewEngine(nlu.ProfileAlpha)
	ninfo := service.Info{Name: "nlu-alpha", Category: "nlu"}
	if err := client.Register(simsvc.New(simsvc.Config{
		Info:    ninfo,
		Latency: simsvc.Constant{D: 4 * time.Millisecond},
		Handler: nluEngine.Service(ninfo).Invoke,
	}), core.WithCacheable()); err != nil {
		return err
	}

	// The documents and analyses persist here, so re-running the pipeline
	// skips the services entirely.
	dir, err := os.MkdirTemp("", "sentiment-monitor-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	store, err := docstore.New(dir, nil)
	if err != nil {
		return err
	}

	// The whole loop as one pipeline run: search → fetch → analyze →
	// aggregate → persist, with 8 fetch/analyze workers.
	query := "market growth technology company"
	res, err := pipeline.AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha"},
		FetchURL: web.URL,
		Limit:    25,
		Workers:  8,
		Store:    store,
		// Query expansion pulls in documents that mention the topic only
		// through aliases or strongly co-occurring terms.
		Expand: true,
	}.Run(context.Background(), query)
	if err != nil {
		return err
	}
	fmt.Printf("query %q returned %d documents (query expansion on)\n", query, res.Hits)
	fmt.Printf("saved search snapshot %s (%d documents)\n", res.SearchID, len(res.Docs))

	// Aggregate: which entities dominate the topic, and how favorably is
	// each represented?
	byID := lexicon.ByID()
	name := func(id string) string {
		if e, ok := byID[id]; ok {
			return e.Name
		}
		return id
	}

	fmt.Println("\nmost-mentioned entities:")
	for i, e := range res.Entities {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-28s in %2d docs, %2d mentions\n", name(e.EntityID), e.Documents, e.Mentions)
	}

	// Keep only entities with enough evidence, then rank by favorability.
	var solid []aggregate.EntitySentiment
	for _, s := range res.Sentiments {
		if s.Documents >= 2 {
			solid = append(solid, s)
		}
	}
	sort.Slice(solid, func(i, j int) bool { return solid[i].MeanScore > solid[j].MeanScore })
	fmt.Println("\nhow favorably entities are represented (mean sentiment):")
	for _, s := range solid {
		bar := renderBar(s.MeanScore)
		fmt.Printf("  %-28s %+.2f %s (%d docs)\n", name(s.EntityID), s.MeanScore, bar, s.Documents)
	}

	// Top keywords across the result set (not disambiguated, per §2.2).
	fmt.Println("\ntop keywords:")
	for _, kw := range res.Keywords[:min(8, len(res.Keywords))] {
		fmt.Printf("  %-16s %d\n", kw.Text, kw.Count)
	}

	// The engine's per-stage view of the run.
	fmt.Println("\npipeline stages:")
	for _, s := range res.Stages {
		fmt.Printf("  %-10s in %2d out %2d  mean %6s  p95 %6s\n",
			s.Name, s.In, s.Out, s.Mean.Round(time.Microsecond), s.P95.Round(time.Microsecond))
	}

	// The same run as one trace tree: the analysis root span, a stage span
	// per document, and every SDK invocation nested inside its stage.
	if full, ok := tracer.Trace(res.TraceID); ok {
		counts := map[string]int{}
		for _, s := range full.Spans {
			counts[s.Name]++
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("\ntrace %s: %d spans in %.0fms\n", full.ID, len(full.Spans), full.DurationMS)
		for _, n := range names {
			fmt.Printf("  %-18s × %d\n", n, counts[n])
		}
	}

	// Re-run: the docstore satisfies every analysis, the SDK cache the
	// search — no service is invoked again.
	before := client.Monitor("nlu-alpha").Count()
	again, err := pipeline.AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha"},
		FetchURL: web.URL,
		Limit:    25,
		Workers:  8,
		Store:    store,
		Expand:   true,
	}.Run(context.Background(), query)
	if err != nil {
		return err
	}
	fmt.Printf("\nre-run: %d/%d analyses served from the store, %d new NLU invocations\n",
		again.CachedAnalyses, len(again.Docs), client.Monitor("nlu-alpha").Count()-before)
	return nil
}

func renderBar(score float64) string {
	const width = 10
	n := int((score + 1) / 2 * width)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	bar := make([]byte, width)
	for i := range bar {
		if i < n {
			bar[i] = '#'
		} else {
			bar[i] = '.'
		}
	}
	return string(bar)
}
