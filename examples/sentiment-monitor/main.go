// Sentiment monitor: the paper's motivating analytics workload — "we have
// been using the rich SDK to determine how favorably people, companies, and
// other entities are represented on the Web" (§2.2).
//
// The pipeline: search the (synthetic) web for a topic, fetch each result's
// HTML over real local HTTP, extract text, analyze every document with an
// NLU service, and aggregate per-entity sentiment across all documents. The
// fetched documents and the query are persisted with a timestamp so the
// analysis can be re-run later without re-fetching (§2.2).
//
//	go run ./examples/sentiment-monitor
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"

	"repro/internal/aggregate"
	"repro/internal/docstore"
	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/search"
	"repro/internal/webcorpus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A synthetic web served over real HTTP.
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 2026, NumDocs: 300})
	web := httptest.NewServer(corpus.Handler())
	defer web.Close()

	// A search engine over that web.
	index := search.BuildIndex(corpus)
	engine := search.NewEngine("search-g", index, search.TuningG)

	query := "market growth technology company"
	results := engine.Search(query, search.Options{Limit: 25})
	fmt.Printf("query %q returned %d documents\n", query, len(results))

	// Fetch every hit's HTML over HTTP and extract analyzable text.
	var saved []docstore.SavedDoc
	for _, r := range results {
		// The corpus URLs use a placeholder host; fetch via the test
		// server by document ID.
		page, err := fetch(web.URL + "/docs/" + r.DocID)
		if err != nil {
			return fmt.Errorf("fetch %s: %w", r.DocID, err)
		}
		saved = append(saved, docstore.SavedDoc{
			URL:   r.URL,
			Title: r.Title,
			HTML:  page,
			Text:  webcorpus.ExtractText(page),
		})
	}

	// Persist the search snapshot: query + time + all documents.
	dir, err := os.MkdirTemp("", "sentiment-monitor-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	store, err := docstore.New(dir, nil)
	if err != nil {
		return err
	}
	searchID, err := store.SaveSearch(query, engine.Name(), saved)
	if err != nil {
		return err
	}
	fmt.Printf("saved search snapshot %s (%d documents)\n", searchID, len(saved))

	// Analyze every document (once — results are persisted too).
	nluEngine := nlu.NewEngine(nlu.ProfileAlpha)
	var analyses []nlu.Analysis
	for _, doc := range saved {
		a, cached, err := store.AnalyzeOnce(doc.Text, "nlu-alpha", nluEngine.Analyze)
		if err != nil {
			return err
		}
		_ = cached
		analyses = append(analyses, a)
	}

	// Aggregate: which entities dominate the topic, and how favorably is
	// each represented?
	entities := aggregate.Entities(analyses)
	sentiments := aggregate.Sentiments(analyses)
	byID := lexicon.ByID()
	name := func(id string) string {
		if e, ok := byID[id]; ok {
			return e.Name
		}
		return id
	}

	fmt.Println("\nmost-mentioned entities:")
	for i, e := range entities {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-28s in %2d docs, %2d mentions\n", name(e.EntityID), e.Documents, e.Mentions)
	}

	// Keep only entities with enough evidence, then rank by favorability.
	var solid []aggregate.EntitySentiment
	for _, s := range sentiments {
		if s.Documents >= 2 {
			solid = append(solid, s)
		}
	}
	sort.Slice(solid, func(i, j int) bool { return solid[i].MeanScore > solid[j].MeanScore })
	fmt.Println("\nhow favorably entities are represented (mean sentiment):")
	for _, s := range solid {
		bar := renderBar(s.MeanScore)
		fmt.Printf("  %-28s %+.2f %s (%d docs)\n", name(s.EntityID), s.MeanScore, bar, s.Documents)
	}

	// Top keywords across the result set (not disambiguated, per §2.2).
	fmt.Println("\ntop keywords:")
	for _, kw := range aggregate.Keywords(analyses, 8) {
		fmt.Printf("  %-16s %d\n", kw.Text, kw.Count)
	}
	return nil
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

func renderBar(score float64) string {
	const width = 10
	n := int((score + 1) / 2 * width)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	bar := make([]byte, width)
	for i := range bar {
		if i < n {
			bar[i] = '#'
		} else {
			bar[i] = '.'
		}
	}
	return string(bar)
}
