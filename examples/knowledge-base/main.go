// Knowledge base: the paper's Figure 5 loop end to end — ingest a CSV data
// set, disambiguate entity names so aliases collapse to canonical IDs, run
// a regression analysis, store the key mathematical results as RDF
// statements, infer new facts from them with a user-defined rule, and
// export everything back to CSV for external tools.
//
//	go run ./examples/knowledge-base
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/kb"
	"repro/internal/rdf"
)

// revenueCSV is a small per-country revenue time series with the paper's
// alias problem baked in: the United States appears under four names.
const revenueCSV = `country,year,revenue
USA,2022,100
United States,2023,112
United States of America,2024,125
America,2025,139
Germany,2022,80
Germany,2023,84
Deutschland,2024,88
Germany,2025,93
Japan,2022,60
Japan,2023,58
Nippon,2024,57
Japan,2025,55
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "kb-example-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	base, err := kb.New(kb.Config{Dir: dir, Passphrase: "kb demo secret", Compress: true})
	if err != nil {
		return err
	}

	// 1. Ingest.
	if _, err := base.IngestCSV("revenue", strings.NewReader(revenueCSV)); err != nil {
		return err
	}
	rs, err := base.SQL("SELECT country, COUNT(*) FROM revenue GROUP BY country")
	if err != nil {
		return err
	}
	fmt.Printf("before disambiguation: %d distinct country strings\n", len(rs.Rows))

	// 2. Disambiguate: USA / United States / America -> country:us.
	resolved, unresolved, err := base.CanonicalizeColumn("revenue", "country")
	if err != nil {
		return err
	}
	rs, err = base.SQL("SELECT country, COUNT(*) FROM revenue GROUP BY country ORDER BY country")
	if err != nil {
		return err
	}
	fmt.Printf("after disambiguation:  %d canonical entities (%d surfaces resolved, %d left)\n",
		len(rs.Rows), resolved, unresolved)
	for _, row := range rs.Rows {
		fmt.Printf("  %-12s %s rows\n", row[0].Text, row[1].String())
	}

	// 3. Analyze per country: regression of revenue on year, stored as
	// RDF facts (slope, trend, a 2026 prediction).
	for _, country := range []string{"country:us", "country:de", "country:jp"} {
		view := "rev_" + strings.TrimPrefix(country, "country:")
		// Materialize a per-country table via SQL + CSV round trip is
		// overkill; filter in place instead using a dedicated table.
		if _, err := base.SQL(fmt.Sprintf("CREATE TABLE %s (year INT, revenue FLOAT)", view)); err != nil {
			return err
		}
		rows, err := base.SQL(fmt.Sprintf("SELECT year, revenue FROM revenue WHERE country = '%s'", country))
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			if _, err := base.SQL(fmt.Sprintf("INSERT INTO %s (year, revenue) VALUES (%s, %s)", view, r[0].String(), r[1].String())); err != nil {
				return err
			}
		}
		m, err := base.AnalyzeAndStore(view, "year", "revenue", "kb:", []float64{2026})
		if err != nil {
			return err
		}
		// Tie the analysis back to the entity for inference.
		if err := base.AddFact("kb:analysis/"+view+"/revenue", "kb:about", country); err != nil {
			return err
		}
		fmt.Printf("%s: slope %+.1f/yr, 2026 prediction %.1f\n", country, m.Slope, m.Predict(2026))
	}

	// 4. Infer: a user rule turns analysis trends into entity-level
	// knowledge, on top of the built-in transitive/RDFS reasoners.
	rule := rdf.Rule{
		Name: "shrinking-market",
		Premises: []rdf.Statement{
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:trend"), O: rdf.NewLiteral("decreasing")},
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:about"), O: rdf.NewVar("who")},
		},
		Conclusions: []rdf.Statement{
			{S: rdf.NewVar("who"), P: rdf.NewIRI("kb:marketOutlook"), O: rdf.NewLiteral("shrinking")},
		},
	}
	if err := base.AddRule(rule); err != nil {
		return err
	}
	growing := rdf.Rule{
		Name: "growing-market",
		Premises: []rdf.Statement{
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:trend"), O: rdf.NewLiteral("increasing")},
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:about"), O: rdf.NewVar("who")},
		},
		Conclusions: []rdf.Statement{
			{S: rdf.NewVar("who"), P: rdf.NewIRI("kb:marketOutlook"), O: rdf.NewLiteral("growing")},
		},
	}
	if err := base.AddRule(growing); err != nil {
		return err
	}
	derived, err := base.Infer()
	if err != nil {
		return err
	}
	fmt.Printf("\ninference derived %d new facts; market outlooks:\n", derived)
	res, err := base.Query("SELECT ?who ?outlook WHERE { ?who <kb:marketOutlook> ?outlook }")
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %s\n", row[0].Value, row[1].Value)
	}

	// 5. Prove a specific conclusion backward (goal-directed, without
	// materializing anything new).
	goal := rdf.Statement{
		S: rdf.NewIRI("country:jp"),
		P: rdf.NewIRI("kb:marketOutlook"),
		O: rdf.NewLiteral("shrinking"),
	}
	proofs, err := base.Prove(goal)
	if err != nil {
		return err
	}
	fmt.Printf("\nbackward proof of %s: %v\n", goal, len(proofs) > 0)

	// 6. Export for external tools, and persist an encrypted compressed
	// snapshot.
	graphCSV, err := base.ExportGraphCSV("knowledge")
	if err != nil {
		return err
	}
	data, err := os.ReadFile(graphCSV)
	if err != nil {
		return err
	}
	if err := base.SaveLocal("knowledge-snapshot", data); err != nil {
		return err
	}
	fmt.Printf("\nexported %d RDF statements to %s and an encrypted snapshot alongside it\n",
		base.Graph().Len(), graphCSV)
	return nil
}
