// Service selection: the paper's storage example (§2) — service s1 has the
// lowest latency for small objects, s2 for large ones. The SDK records
// latency as a function of a latency parameter (the object size), predicts
// per-request latency, and selects the right service on both sides of the
// crossover. A naive client that always uses the on-average-fastest service
// pays a real penalty on large objects.
//
//	go run ./examples/service-selection
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/rank"
	"repro/internal/service"
	"repro/internal/simsvc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	client, err := core.NewClient(core.Config{
		Scorer: rank.Weighted{W: rank.Weights{Alpha: 1}}, // latency-driven selection
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// s1: tiny base cost, steep per-KB slope. s2: big base, almost flat.
	s1 := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "store-s1", Category: "storage", CostPerCall: 0.001},
		Latency: simsvc.SizeLinear{Base: 300 * time.Microsecond, PerKB: 25 * time.Microsecond, Jitter: 0.05},
		Seed:    1,
	})
	s2 := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "store-s2", Category: "storage", CostPerCall: 0.002},
		Latency: simsvc.SizeLinear{Base: 2 * time.Millisecond, PerKB: 2 * time.Microsecond, Jitter: 0.05},
		Seed:    2,
	})
	if err := client.Register(s1); err != nil {
		return err
	}
	if err := client.Register(s2); err != nil {
		return err
	}

	// Training: store objects of assorted sizes on both services so the
	// SDK can learn each one's latency as a function of size.
	ctx := context.Background()
	fmt.Println("training the latency predictors...")
	for rep := 0; rep < 3; rep++ {
		for kb := 1; kb <= 1024; kb *= 2 {
			req := service.Request{Op: "put", Key: fmt.Sprintf("obj-%d", kb), Data: make([]byte, kb*1024)}
			if _, err := client.Invoke(ctx, "store-s1", req); err != nil {
				return err
			}
			if _, err := client.Invoke(ctx, "store-s2", req); err != nil {
				return err
			}
		}
	}

	fmt.Printf("\n%-10s %-14s %-14s %-12s\n", "size", "pred store-s1", "pred store-s2", "selected")
	for _, kb := range []int{1, 16, 64, 80, 128, 512, 2048} {
		sizeBytes := float64(kb * 1024)
		p1, err := client.PredictLatency("store-s1", []float64{sizeBytes})
		if err != nil {
			return err
		}
		p2, err := client.PredictLatency("store-s2", []float64{sizeBytes})
		if err != nil {
			return err
		}
		// Select for a request of exactly this size; ranking combines
		// the predictions with the configured weights.
		choice, err := client.Select("storage", service.Request{Op: "put", Data: make([]byte, kb*1024)})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-14v %-14v %-12s\n",
			fmt.Sprintf("%dKB", kb), p1.Round(10*time.Microsecond), p2.Round(10*time.Microsecond), choice)
	}

	// Quantify the benefit: predicted-choice vs always-s1 on a mixed
	// workload.
	fmt.Println("\nmixed workload (100 writes, sizes 1KB-2MB):")
	var smartTotal, staticTotal time.Duration
	for i := 0; i < 100; i++ {
		kb := 1 << (i % 12) // 1KB..2MB
		req := service.Request{Op: "put", Key: fmt.Sprintf("w-%d", i), Data: make([]byte, kb*1024)}
		choice, err := client.Select("storage", req)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := client.Invoke(ctx, choice, req); err != nil {
			return err
		}
		smartTotal += time.Since(start)

		start = time.Now()
		if _, err := client.Invoke(ctx, "store-s1", req); err != nil {
			return err
		}
		staticTotal += time.Since(start)
	}
	fmt.Printf("prediction-driven selection: %v total\n", smartTotal.Round(time.Millisecond))
	fmt.Printf("always store-s1:             %v total (%.1fx slower)\n",
		staticTotal.Round(time.Millisecond), float64(staticTotal)/float64(smartTotal))
	return nil
}
