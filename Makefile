GO ?= go

.PHONY: build test vet race check cover bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector. Timing-sensitive
# guards (TestPipelineOverheadCacheHit, TestTraceOverheadFacade) skip
# themselves here; run plain `make test` to exercise them.
race:
	$(GO) test -race ./...

# check is the pre-merge gate.
check: vet race

# cover runs the full suite with per-package coverage percentages.
cover:
	$(GO) test -cover ./...

# bench runs the experiment benchmarks (E1–E16, A1–A4) from bench_test.go.
# Narrow with BENCH, e.g. `make bench BENCH=BenchmarkE1Caching`.
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem .

fmt:
	gofmt -w .
