GO ?= go

.PHONY: build test vet race check cover bench bench-rdf bench-search bench-nlu bench-metrics bench-chaos bench-cloud loadgen-smoke cloud-smoke fmt fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector, including the cache
# layer's concurrency tests (sharded stores, singleflight cancellation,
# concurrent disk writers). Timing-sensitive guards
# (TestPipelineOverheadCacheHit, TestTraceOverheadFacade,
# TestShardedCacheShape, TestRDFInferenceShape's, TestSearchShape's and
# TestE21ChaosShape's timing legs) skip themselves here; run plain
# `make test` to exercise them.
race:
	$(GO) test -race ./...

# check is the pre-merge gate. loadgen-smoke drives the facade through a
# short saturating burst with adaptive shedding on, catching harness or
# admission-control regressions the unit tests can miss; cloud-smoke runs
# the sharded-store experiment at reduced scale with value verification
# on every read, catching placement or replication regressions.
check: fmt-check vet race loadgen-smoke cloud-smoke

# cover runs the full suite with per-package coverage percentages.
cover:
	$(GO) test -cover ./...

# bench runs the experiment benchmarks (E1–E22, A1–A4) from bench_test.go
# plus the cache micro-benchmarks (BenchmarkCacheHitParallel compares the
# single-mutex and sharded stores at 1/8/64-goroutine parallelism).
# Narrow with BENCH, e.g. `make bench BENCH=BenchmarkE1Caching` or
# `make bench BENCH=BenchmarkCacheHitParallel`.
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem . ./internal/cache

# bench-rdf runs the RDF engine benchmarks: the interned store vs the
# frozen pre-PR string-keyed baseline (internal/rdf/rdfref) on joins
# (BenchmarkSolveJoin), two-bound matches, and forward chaining
# (BenchmarkForwardChainTransitive — the roundcap/naive-stringstore leg
# takes seconds per iteration by design; it is the baseline being beaten),
# plus the knowledge-base Infer/Prove benchmarks on the cached rule set.
bench-rdf:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem ./internal/rdf ./internal/kb

# bench-search runs the search engine benchmarks: the dictionary-coded
# block-max top-k evaluator vs the frozen seed full-scan baseline
# (internal/search/searchref) at 1k/10k/50k-doc corpora
# (BenchmarkSearchBaseline vs BenchmarkSearchPruned), plus the
# query-expansion path (BenchmarkSearchExpanded) and index construction.
bench-search:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem ./internal/search

# bench-nlu runs the NLU engine benchmarks: the interned token-ID hot
# path vs the frozen pre-interning engines (internal/nlu/nluref), per
# profile (BenchmarkAnalyzeInterned vs BenchmarkAnalyzeReference), plus
# the fast reseedable rand source underneath it (BenchmarkSeedFast vs
# BenchmarkSeedMathRand in internal/xrand).
bench-nlu:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem ./internal/nlu ./internal/xrand

# bench-metrics runs the instrument-layer benchmarks: counter/gauge
# increments and the lock-free log-linear histogram's Observe/Snapshot
# (uncontended and GOMAXPROCS-parallel), plus the exposition path — label
# escaping with hoisted vs per-call replacers (BenchmarkEscapeLabel) and
# full Set rendering into the Prometheus text format (BenchmarkSetExpose).
bench-metrics:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem ./internal/metrics

# bench-chaos runs the chaos/load experiment (E21) at full scale: the
# loadgen harness drives the facade closed-loop at 4x+ saturation through
# a seeded fault storm, once without and once with the adaptive shed
# stage, and prints the goodput/latency comparison table.
bench-chaos:
	$(GO) run ./cmd/benchmark -run E21

# bench-cloud runs the sharded cloud store experiment (E22) at full
# scale: 1/2/4/8 capacity-limited store nodes behind the consistent-hash
# cluster client, measuring aggregate write/read throughput and p99, then
# killing one node mid-read-storm to measure served availability.
bench-cloud:
	$(GO) run ./cmd/benchmark -run E22

# loadgen-smoke is a deterministic half-second saturating burst through
# the in-process rig; it exits non-zero if the harness sends nothing,
# produces zero goodput, or the shed stage rejects nothing.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke

# cloud-smoke is E22 at reduced scale as a correctness gate: every read
# verifies the stored value through the sharded client, so a placement,
# quorum, or failover bug exits non-zero. Timing columns at this scale
# are indicative only.
cloud-smoke:
	$(GO) run ./cmd/benchmark -run E22 -scale 0.15

fmt:
	gofmt -w .

# fmt-check fails if any file is not gofmt-clean, without rewriting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
