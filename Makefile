GO ?= go

.PHONY: build test check cover bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet everything, then the full suite under
# the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# cover runs the full suite with per-package coverage percentages.
cover:
	$(GO) test -cover ./...

# bench runs the experiment benchmarks (E1–E16, A1–A4) from bench_test.go.
# Narrow with BENCH, e.g. `make bench BENCH=BenchmarkE1Caching`.
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem .

fmt:
	gofmt -w .
