package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

// Each benchmark regenerates one experiment table from DESIGN.md's
// per-experiment index (E1-E15 reproduce paper claims; A1-A4 are design
// ablations). Benchmarks run the experiment at a reduced scale per
// iteration; run cmd/benchmark for full-scale tables.
//
//	go test -bench=. -benchmem
//	go run ./cmd/benchmark            # full tables
//	go run ./cmd/benchmark -run E5    # one experiment

const benchScale = experiments.Scale(0.05)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	entry, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := entry.Run(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1Caching(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2Ranking(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3Failover(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4Async(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5SizePredict(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6Consensus(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7Persist(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8Inference(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Codec(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10LocalRemote(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11OfflineSync(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Convert(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13Disambig(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Redundancy(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15Vision(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkA1CacheAblation(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkA2ScoreAblation(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3PredictAblation(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4ChainAblation(b *testing.B)   { benchExperiment(b, "A4") }

// Sanity: every registry entry has a benchmark above.
func TestEveryExperimentHasABenchmark(t *testing.T) {
	covered := map[string]bool{
		"E1": true, "E2": true, "E3": true, "E4": true, "E5": true,
		"E6": true, "E7": true, "E8": true, "E9": true, "E10": true,
		"E11": true, "E12": true, "E13": true, "E14": true, "E15": true,
		"A1": true, "A2": true, "A3": true, "A4": true,
	}
	for _, e := range experiments.All() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark", e.ID)
		}
	}
	if len(experiments.All()) != len(covered) {
		t.Errorf("registry (%d) and benchmark coverage (%d) diverged",
			len(experiments.All()), len(covered))
	}
}

// Example of running a single experiment programmatically.
func Example_findExperiment() {
	entry, err := experiments.Find("E2")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(entry.ID, "-", entry.Title)
	// Output: E2 - score-based ranking
}
