package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/failover"
	"repro/internal/metrics"
	"repro/internal/nlu"
	"repro/internal/nlu/nluref"
	"repro/internal/predict"
	"repro/internal/rdf"
	"repro/internal/rdf/rdfref"
	"repro/internal/search"
	"repro/internal/search/searchref"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/webcorpus"
)

// Each benchmark regenerates one experiment table from DESIGN.md's
// per-experiment index (E1-E15 reproduce paper claims; E16-E22 measure
// this repo's own engines; A1-A4 are design ablations). Benchmarks run
// the experiment at a reduced scale per
// iteration; run cmd/benchmark for full-scale tables.
//
//	go test -bench=. -benchmem
//	go run ./cmd/benchmark            # full tables
//	go run ./cmd/benchmark -run E5    # one experiment

const benchScale = experiments.Scale(0.05)

// benchDoc is a representative analysis payload (the quickstart document).
// The cache key hashes the whole request, so the fast path's fixed costs
// are judged against a realistic document rather than a degenerate
// few-byte string.
const benchDoc = "Acme Corporation reported excellent quarterly earnings, and analysts " +
	"in Germany praised the remarkable growth of the technology market."

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	entry, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := entry.Run(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE2Ranking(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE4Async(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5SizePredict(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6Consensus(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7Persist(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8Inference(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Codec(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10LocalRemote(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11OfflineSync(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Convert(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13Disambig(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Redundancy(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15Vision(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16Pipeline(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17RDFScaling(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18SearchScaling(b *testing.B)  { benchExperiment(b, "E18") }
func BenchmarkE19NLUIngest(b *testing.B)      { benchExperiment(b, "E19") }
func BenchmarkE20MetricsCost(b *testing.B)    { benchExperiment(b, "E20") }
func BenchmarkE21Chaos(b *testing.B)          { benchExperiment(b, "E21") }
func BenchmarkE22CloudStore(b *testing.B)     { benchExperiment(b, "E22") }
func BenchmarkA1CacheAblation(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkA2ScoreAblation(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3PredictAblation(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4ChainAblation(b *testing.B)   { benchExperiment(b, "A4") }

// Sanity: every registry entry has a benchmark above.
func TestEveryExperimentHasABenchmark(t *testing.T) {
	covered := map[string]bool{
		"E1": true, "E2": true, "E3": true, "E4": true, "E5": true,
		"E6": true, "E7": true, "E8": true, "E9": true, "E10": true,
		"E11": true, "E12": true, "E13": true, "E14": true, "E15": true,
		"E16": true, "E17": true, "E18": true, "E19": true, "E20": true,
		"E21": true, "E22": true,
		"A1": true, "A2": true, "A3": true, "A4": true,
	}
	for _, e := range experiments.All() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark", e.ID)
		}
	}
	if len(experiments.All()) != len(covered) {
		t.Errorf("registry (%d) and benchmark coverage (%d) diverged",
			len(experiments.All()), len(covered))
	}
}

// Example of running a single experiment programmatically.
func Example_findExperiment() {
	entry, err := experiments.Find("E2")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(entry.ID, "-", entry.Title)
	// Output: E2 - score-based ranking
}

// BenchmarkE1Caching regenerates the E1 table and compares the middleware
// pipeline's cache-hit fast path ("pipeline") against a hand-inlined
// replica of the pre-pipeline monolithic Invoke ("seed-inline"). The two
// sub-benchmarks bound the cost of the chain's indirection on the hottest
// path in the SDK; TestPipelineOverheadCacheHit guards the ratio.
func BenchmarkE1Caching(b *testing.B) {
	b.Run("experiment", func(b *testing.B) { benchExperiment(b, "E1") })
	req := service.Request{Op: "analyze", Text: benchDoc}
	b.Run("cache-hit/pipeline", func(b *testing.B) {
		invoke := newPipelineCacheHit(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := invoke(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit/seed-inline", func(b *testing.B) {
		invoke := newSeedInlineCacheHit(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := invoke(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3Failover regenerates the E3 table and compares a full
// cache-miss invocation through the pipeline (retry + monitor + predictor
// stages) against the equivalent hand-inlined seed path.
func BenchmarkE3Failover(b *testing.B) {
	b.Run("experiment", func(b *testing.B) { benchExperiment(b, "E3") })
	req := service.Request{Op: "analyze", Text: "benchmark full invoke path"}
	b.Run("invoke/pipeline", func(b *testing.B) {
		client := newBenchClient(b)
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := client.Invoke(ctx, "bench", req, core.NoCache()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("invoke/seed-inline", func(b *testing.B) {
		invoke := newSeedInlineInvoke(b)
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := invoke(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchService() service.Service {
	return service.Func{
		Meta: service.Info{Name: "bench", Category: "bench"},
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			return service.Response{Body: []byte("ok")}, nil
		},
	}
}

func newBenchClient(b testing.TB) *core.Client {
	b.Helper()
	client, err := core.NewClient(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(client.Close)
	if err := client.Register(benchService(), core.WithCacheable()); err != nil {
		b.Fatal(err)
	}
	return client
}

// newPipelineCacheHit primes the client's cache and returns a closure
// hitting it through the full middleware chain.
func newPipelineCacheHit(b testing.TB) func(service.Request) (service.Response, error) {
	b.Helper()
	client := newBenchClient(b)
	ctx := context.Background()
	warm := service.Request{Op: "analyze", Text: benchDoc}
	if _, err := client.Invoke(ctx, "bench", warm); err != nil {
		b.Fatal(err)
	}
	return func(req service.Request) (service.Response, error) {
		return client.Invoke(ctx, "bench", req)
	}
}

// seedInvokeOpts mirrors the seed monolith's invokeOpts.
type seedInvokeOpts struct {
	noCache bool
	retry   *failover.RetryPolicy
}

// newSeedInlineCacheHit replicates the pre-pipeline monolithic Invoke's
// cache-hit path line for line: the variadic option loop (whose &io forced
// a heap allocation on every call, options or not), a mutex-guarded
// registration lookup, the "svc:"+name+":" key concatenation, and a direct
// cache Get — no middleware indirection. The cache itself is the same
// sharded LRU the Client constructs, so the guard isolates the chain's
// indirection; sharded-vs-single-mutex cost has its own guard
// (TestShardedCacheShape).
func newSeedInlineCacheHit(b testing.TB) func(service.Request) (service.Response, error) {
	b.Helper()
	type seedReg struct {
		svc       service.Service
		cacheable bool
	}
	var mu sync.Mutex
	regs := map[string]*seedReg{"bench": {svc: benchService(), cacheable: true}}
	mem := cache.NewSharded[service.Response](4096)
	flight := cache.NewGroup[service.Response]()
	ctx := context.Background()
	name := "bench"
	seedInvoke := func(req service.Request, opts ...func(*seedInvokeOpts)) (service.Response, error) {
		var io seedInvokeOpts
		for _, o := range opts {
			o(&io)
		}
		mu.Lock()
		reg := regs[name]
		mu.Unlock()
		useCache := reg.cacheable && !io.noCache
		key := "svc:" + name + ":" + req.CacheKey()
		if useCache {
			if resp, err := mem.Get(key); err == nil {
				return resp, nil
			}
			resp, err, _ := flight.Do(key, func() (service.Response, error) {
				if resp, err := mem.Get(key); err == nil {
					return resp, nil
				}
				resp, err := reg.svc.Invoke(ctx, req)
				if err != nil {
					return service.Response{}, err
				}
				mem.Set(key, resp)
				return resp, nil
			})
			return resp, err
		}
		return reg.svc.Invoke(ctx, req)
	}
	invoke := func(req service.Request) (service.Response, error) { return seedInvoke(req) }
	warm := service.Request{Op: "analyze", Text: benchDoc}
	if _, err := invoke(warm); err != nil {
		b.Fatal(err)
	}
	return invoke
}

// newSeedInlineInvoke replicates the monolith's cache-miss path: timed
// failover.Invoke, a monitor observation, and a mutex-guarded predictor
// observation, inlined without the chain.
func newSeedInlineInvoke(b testing.TB) func(context.Context, service.Request) (service.Response, error) {
	b.Helper()
	svc := benchService()
	clk := clock.Real()
	monitors := metrics.NewRegistry(metrics.WithClock(clk))
	predictor := predict.New(predict.Config{})
	var mu sync.Mutex
	policy := failover.RetryPolicy{MaxAttempts: 2}
	return func(ctx context.Context, req service.Request) (service.Response, error) {
		params := []float64{float64(req.ArgSize())}
		start := clk.Now()
		resp, attempts, err := failover.Invoke(ctx, clk, svc, req, policy)
		elapsed := clk.Since(start)
		monitors.Monitor("bench").Record(metrics.Observation{
			Latency: elapsed, Err: err, Params: params, Attempts: attempts,
		})
		if err != nil {
			return service.Response{}, err
		}
		mu.Lock()
		predictor.Observe(params, elapsed)
		mu.Unlock()
		return resp, nil
	}
}

// TestPipelineOverheadCacheHit is the bench guard for the middleware
// refactor: the composed chain may cost at most 8% over the hand-inlined
// seed path on the cache-hit fast path. The budget is 8% rather than a
// tighter bound because the measured gap is bimodal across process
// states on a small shared box — ±20ns with heap and code layout, on a
// ~450ns path where 5% is only ~22ns — while the regressions this guard
// exists for (an extra allocation, a second lock, per-call key hashing)
// each cost well above 8%. The two paths run in alternating-order
// batches, the comparison uses each path's fastest batch, and an
// over-budget first pass is re-measured once at triple resolution
// before failing.
func TestPipelineOverheadCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector: instrumentation distorts relative costs")
	}
	req := service.Request{Op: "analyze", Text: benchDoc}
	batch := func(invoke func(service.Request) (service.Response, error)) time.Duration {
		const iters = 2000
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := invoke(req); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	pipeline := newPipelineCacheHit(t)
	seed := newSeedInlineCacheHit(t)
	// Warm both paths (cache primed, branch predictors settled).
	for i := 0; i < 3; i++ {
		batch(pipeline)
		batch(seed)
	}

	// Both paths allocate per call (the cache key), so GC pauses are one
	// big noise source: run collections between batches, never inside a
	// timed window. Background load is the other; see the doc comment for
	// how the measurement deals with it.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	measure := func(rounds int) (pBest, sBest time.Duration) {
		pBest, sBest = 1<<62, 1<<62
		for r := 0; r < rounds; r++ {
			if r%8 == 0 {
				runtime.GC()
			}
			var p, s time.Duration
			if r%2 == 0 {
				p, s = batch(pipeline), batch(seed)
			} else {
				s, p = batch(seed), batch(pipeline)
			}
			pBest, sBest = min(pBest, p), min(sBest, s)
		}
		return pBest, sBest
	}
	pBest, sBest := measure(120)
	if float64(pBest-sBest)/float64(sBest) > 0.08 {
		pBest, sBest = measure(360)
	}
	overhead := float64(pBest-sBest) / float64(sBest)
	perOp := func(d time.Duration) time.Duration { return d / 2000 }
	t.Logf("cache hit: pipeline %v/op, seed-inline %v/op, overhead %.2f%%",
		perOp(pBest), perOp(sBest), overhead*100)
	if overhead > 0.08 {
		t.Errorf("middleware pipeline costs %.2f%% over the seed fast path, budget is 8%%", overhead*100)
	}
}

// newTracedBenchClient is newBenchClient with the given tracer wired into
// the middleware chain (nil disables tracing entirely).
func newTracedBenchClient(tb testing.TB, tr *trace.Tracer) *core.Client {
	tb.Helper()
	client, err := core.NewClient(core.Config{Tracer: tr})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(client.Close)
	if err := client.Register(benchService(), core.WithCacheable()); err != nil {
		tb.Fatal(err)
	}
	return client
}

// newFacadeCacheHit builds the HTTP façade over a cache-primed client
// (optionally traced) and returns a closure performing one complete
// in-process POST /v1/invoke round trip: JSON decode, the middleware
// chain's cache-hit path, JSON encode.
func newFacadeCacheHit(tb testing.TB, tr *trace.Tracer) func() error {
	tb.Helper()
	client := newTracedBenchClient(tb, tr)
	api := core.NewAPI(client)
	payload, err := json.Marshal(map[string]any{
		"service": "bench",
		"request": service.Request{Op: "analyze", Text: benchDoc},
	})
	if err != nil {
		tb.Fatal(err)
	}
	do := func() error {
		req := httptest.NewRequest(http.MethodPost, "/v1/invoke", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("invoke: HTTP %d: %s", rec.Code, rec.Body)
		}
		return nil
	}
	if err := do(); err != nil { // prime the response cache
		tb.Fatal(err)
	}
	return do
}

// BenchmarkTraceOverhead exposes the tracing tax at both granularities.
// The façade pair is what TestTraceOverheadFacade guards; the client pair
// shows the raw per-invocation span cost against a ~600ns baseline, where
// even two timestamp reads register as whole percents — which is why the
// enforced budget is end-to-end, not on the bare client. The "disabled"
// variant registers a tracer with sample rate 0: the client omits the
// TraceStage entirely, so it must match "untraced" within noise.
func BenchmarkTraceOverhead(b *testing.B) {
	req := service.Request{Op: "analyze", Text: benchDoc}
	clientBench := func(tr *trace.Tracer) func(*testing.B) {
		return func(b *testing.B) {
			client := newTracedBenchClient(b, tr)
			ctx := context.Background()
			if _, err := client.Invoke(ctx, "bench", req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Invoke(ctx, "bench", req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	facadeBench := func(tr *trace.Tracer) func(*testing.B) {
		return func(b *testing.B) {
			do := newFacadeCacheHit(b, tr)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := do(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	tr := trace.New()
	defer tr.Close()
	off := trace.New(trace.WithSampleRate(0))
	defer off.Close()
	b.Run("client/untraced", clientBench(nil))
	b.Run("client/disabled", clientBench(off))
	b.Run("client/traced", clientBench(tr))
	b.Run("facade/untraced", facadeBench(nil))
	b.Run("facade/traced", facadeBench(tr))
}

// TestTraceOverheadFacade is the observability overhead guard: with 100%
// sampling, tracing may add at most 5% to a cache-hit invocation measured
// end-to-end through the HTTP façade — the smallest unit of work a caller
// of the SDK-as-a-service can buy. The same alternating-order, best-batch,
// re-measure-once design as TestPipelineOverheadCacheHit cancels machine
// drift; GC stays enabled here (each round trip allocates
// request/recorder/JSON state on both sides equally) with forced
// collections between batches.
func TestTraceOverheadFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector: instrumentation distorts relative costs")
	}
	tr := trace.New()
	t.Cleanup(tr.Close)
	traced := newFacadeCacheHit(t, tr)
	plain := newFacadeCacheHit(t, nil)
	batch := func(do func() error) time.Duration {
		const iters = 400
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := do(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	for i := 0; i < 3; i++ { // settle caches and branch predictors
		batch(traced)
		batch(plain)
	}
	measure := func(rounds int) (tBest, pBest time.Duration) {
		tBest, pBest = 1<<62, 1<<62
		for r := 0; r < rounds; r++ {
			if r%8 == 0 {
				runtime.GC()
			}
			var tb, pb time.Duration
			if r%2 == 0 {
				tb, pb = batch(traced), batch(plain)
			} else {
				pb, tb = batch(plain), batch(traced)
			}
			tBest, pBest = min(tBest, tb), min(pBest, pb)
		}
		return tBest, pBest
	}
	tBest, pBest := measure(60)
	if float64(tBest-pBest)/float64(pBest) > 0.05 {
		tBest, pBest = measure(180) // could be interference; re-measure before failing
	}
	overhead := float64(tBest-pBest) / float64(pBest)
	perOp := func(d time.Duration) time.Duration { return d / 400 }
	t.Logf("facade cache hit: traced %v/op, untraced %v/op, overhead %.2f%%",
		perOp(tBest), perOp(pBest), overhead*100)
	if overhead > 0.05 {
		t.Errorf("tracing at 100%% sampling costs %.2f%% end-to-end, budget is 5%%", overhead*100)
	}
}

// TestMetricsOverheadShape is the instrument-layer overhead guard, the
// metrics counterpart of TestTraceOverheadFacade: Histogram.Observe must
// be allocation-free, and permanently instrumenting the search and NLU
// hot paths may cost at most 5% against their uninstrumented twins. The
// same alternating-order, best-batch, re-measure-once design cancels
// machine drift.
func TestMetricsOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector: instrumentation distorts relative costs")
	}

	// The zero-allocation contract first: it holds unconditionally, so it
	// is checked before any timing.
	h := metrics.NewHistogram()
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", allocs)
	}

	// Each closure runs one full batch internally (so per-batch setup like
	// attaching the process-wide NLU instruments amortizes to noise).
	measureOverhead := func(instrumented, plain func()) float64 {
		batch := func(do func()) time.Duration {
			start := time.Now()
			do()
			return time.Since(start)
		}
		for i := 0; i < 3; i++ { // settle caches and branch predictors
			batch(instrumented)
			batch(plain)
		}
		measure := func(rounds int) (iBest, pBest time.Duration) {
			iBest, pBest = 1<<62, 1<<62
			for r := 0; r < rounds; r++ {
				if r%8 == 0 {
					runtime.GC()
				}
				var ib, pb time.Duration
				if r%2 == 0 {
					ib, pb = batch(instrumented), batch(plain)
				} else {
					pb, ib = batch(plain), batch(instrumented)
				}
				iBest, pBest = min(iBest, ib), min(pBest, pb)
			}
			return iBest, pBest
		}
		iBest, pBest := measure(60)
		if float64(iBest-pBest)/float64(pBest) > 0.05 {
			iBest, pBest = measure(180) // could be interference; re-measure before failing
		}
		return float64(iBest-pBest) / float64(pBest)
	}

	t.Run("search", func(t *testing.T) {
		// Server-scale corpus: per-query work must dwarf the two clock
		// reads, as it does in any deployment worth instrumenting.
		corpus := webcorpus.Generate(webcorpus.Config{Seed: 8, NumDocs: 600})
		plainIdx := search.BuildIndex(corpus)
		instIdx := search.BuildIndex(corpus, search.WithMetrics(metrics.NewSet()))
		queries := []string{"market growth technology", "Acme Corporation", "energy policy europe", "quarterly earnings"}
		batchOf := func(idx *search.Index) func() {
			return func() {
				for i := 0; i < 200; i++ {
					idx.Search(queries[i%len(queries)], search.TuningG, search.Options{Limit: 10})
				}
			}
		}
		overhead := measureOverhead(batchOf(instIdx), batchOf(plainIdx))
		t.Logf("search query overhead: %.2f%%", overhead*100)
		if overhead > 0.05 {
			t.Errorf("instrumented search costs %.2f%% over uninstrumented, budget is 5%%", overhead*100)
		}
	})

	t.Run("nlu", func(t *testing.T) {
		// NLU instrumentation is process-wide, so the instrumented batch
		// attaches a live set for its duration and detaches after; both
		// closures drive the same engine on the same document.
		engine := nlu.NewEngine(nlu.ProfileAlpha)
		set := metrics.NewSet()
		nlu.Instrument(nil)
		t.Cleanup(func() { nlu.Instrument(nil) })
		overhead := measureOverhead(
			func() {
				nlu.Instrument(set)
				for i := 0; i < 400; i++ {
					engine.Analyze(benchDoc)
				}
				nlu.Instrument(nil)
			},
			func() {
				for i := 0; i < 400; i++ {
					engine.Analyze(benchDoc)
				}
			},
		)
		t.Logf("nlu analyze overhead: %.2f%%", overhead*100)
		if overhead > 0.05 {
			t.Errorf("instrumented NLU costs %.2f%% over uninstrumented, budget is 5%%", overhead*100)
		}
	})
}

// shardedShapeKeys builds SDK-realistic cache keys (a service prefix plus
// a sha256-hex request key, as CacheStage produces) and primes both caches
// with them. Capacities carry 2x headroom so the hash split across shards
// never evicts (the shape under test is the hit path).
func shardedShapeKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "svc:bench:" + service.Request{Op: "analyze", Key: fmt.Sprint(i)}.CacheKey()
	}
	return keys
}

// TestShardedCacheShape is the tentpole guard for the sharded cache: the
// sharded hit path may cost at most 10% over the single-mutex Memory when
// single-threaded, and must deliver at least 2x its throughput at 64-way
// parallelism on machines with enough cores for parallelism to be real
// (GOMAXPROCS >= 8; below that the parallel leg only logs).
//
// The relative bound carries an absolute floor: shard selection is a
// constant ~2-3ns (sampled-key hash plus one index), so on a machine
// whose whole hit path is ~30ns the intrinsic ratio already brushes 10%,
// while the regressions this guard exists for — rehashing the full key,
// an allocation, a second lock — each cost 9ns or more. Failing requires
// both bounds: overhead above 10% AND above 4ns per op, re-measured once
// at triple resolution before declaring it real.
//
// Rounds interleave the two implementations with alternating order (so
// neither always runs first, e.g. into a GC-cooled cache), and the
// comparison uses each implementation's fastest batch — the minimum is
// the run least disturbed by the scheduler, which is the intrinsic cost
// a shape test is after. Mirrors TestPipelineOverheadCacheHit in spirit.
func TestShardedCacheShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector: instrumentation distorts relative costs")
	}
	const nkeys = 1024
	keys := shardedShapeKeys(nkeys)
	single := cache.NewMemory[int](2 * nkeys)
	sharded := cache.NewSharded[int](2*nkeys, cache.WithShards(16))
	defer sharded.Close()
	for i, k := range keys {
		single.Set(k, i)
		sharded.Set(k, i)
	}

	get := func(m cache.Store[int]) func() error {
		return func() error {
			for _, k := range keys {
				if _, err := m.Get(k); err != nil {
					return err
				}
			}
			return nil
		}
	}
	batch := func(do func() error) time.Duration {
		const iters = 40
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := do(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	singleGet, shardedGet := get(single), get(sharded)
	for i := 0; i < 3; i++ { // settle caches and branch predictors
		batch(shardedGet)
		batch(singleGet)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	measure := func(rounds int) (shBest, sgBest time.Duration) {
		shBest, sgBest = 1<<62, 1<<62
		for r := 0; r < rounds; r++ {
			if r%8 == 0 {
				runtime.GC()
			}
			var sh, sg time.Duration
			if r%2 == 0 {
				sh, sg = batch(shardedGet), batch(singleGet)
			} else {
				sg, sh = batch(singleGet), batch(shardedGet)
			}
			shBest, sgBest = min(shBest, sh), min(sgBest, sg)
		}
		return shBest, sgBest
	}
	perOp := func(d time.Duration) time.Duration { return d / (40 * nkeys) }
	overBudget := func(sh, sg time.Duration) bool {
		return float64(sh-sg)/float64(sg) > 0.10 && perOp(sh-sg) > 4*time.Nanosecond
	}
	shBest, sgBest := measure(60)
	if overBudget(shBest, sgBest) {
		shBest, sgBest = measure(180) // could be interference; re-measure before failing
	}
	overhead := float64(shBest-sgBest) / float64(sgBest)
	t.Logf("single-threaded hit: sharded %v/op, single-mutex %v/op, overhead %.2f%% (+%v/op)",
		perOp(shBest), perOp(sgBest), overhead*100, perOp(shBest-sgBest))
	if overBudget(shBest, sgBest) {
		t.Errorf("sharded cache costs %.2f%% (+%v/op) over single-mutex when single-threaded, budget is 10%% and 4ns/op",
			overhead*100, perOp(shBest-sgBest))
	}

	// Parallel leg: 64 goroutines each performing a fixed slice of Gets.
	parallel := func(m cache.Store[int]) time.Duration {
		const goroutines, opsPer = 64, 20000
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				i := g * 131
				for n := 0; n < opsPer; n++ {
					if _, err := m.Get(keys[i%nkeys]); err != nil {
						t.Error(err)
						return
					}
					i += 7
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}
	parallel(sharded) // warm scheduler
	parallel(single)
	var shPar, sgPar time.Duration
	for b := 0; b < 8; b++ {
		shPar += parallel(sharded)
		sgPar += parallel(single)
	}
	speedup := float64(sgPar) / float64(shPar)
	t.Logf("64-way parallel hit: sharded %v, single-mutex %v, speedup %.2fx (GOMAXPROCS=%d)",
		shPar, sgPar, speedup, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) >= 8 && speedup < 2 {
		t.Errorf("sharded cache is only %.2fx single-mutex throughput at 64-way parallelism, want >= 2x", speedup)
	}
}

// rdfShapeRules is the linear reachability rule set TestRDFInferenceShape
// chains over: on a linear rule set semi-naive evaluation derives every
// fact exactly once, which is the property the guard pins.
func rdfShapeRules() []rdf.Rule {
	edge := rdf.NewIRI("edge")
	reaches := rdf.NewIRI("reaches")
	x, y, z := rdf.NewVar("x"), rdf.NewVar("y"), rdf.NewVar("z")
	return []rdf.Rule{
		{
			Name:        "reach-base",
			Premises:    []rdf.Statement{{S: x, P: edge, O: y}},
			Conclusions: []rdf.Statement{{S: x, P: reaches, O: y}},
		},
		{
			Name:        "reach-step",
			Premises:    []rdf.Statement{{S: x, P: edge, O: y}, {S: y, P: reaches, O: z}},
			Conclusions: []rdf.Statement{{S: x, P: reaches, O: z}},
		},
	}
}

// TestRDFInferenceShape guards the PR 5 inference rewrite the way
// TestShardedCacheShape guards the sharded cache. Correctness first: on a
// 1000-node linear chain the semi-naive evaluator must reach the exact
// C(1000,2) closure while firing each rule exactly once per derived fact
// (ChainStats.Derivations == Derived), and the round-buffered naive
// strategy must add the identical fact set round for round. Then timing:
// the full naive closure takes minutes on the pre-PR string-keyed
// baseline, so both engines run capped at the same round budget — the
// work ratio grows with the number of rounds, so the cap makes the
// comparison cheaper AND more conservative — and semi-naive must finish
// at least 5x faster (measured margin is >50x; regressions this guard
// exists for, like re-deriving old rounds or rebuilding candidate sets
// per pattern, each cost far more than the slack). Rounds alternate
// engine order and the comparison uses each engine's fastest batch,
// re-measured once at higher resolution before failing.
func TestRDFInferenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("inference guard skipped in -short mode")
	}
	const n = 1000
	rules := rdfShapeRules()
	stmts := make([]rdf.Statement, 0, n-1)
	for i := 0; i < n-1; i++ {
		stmts = append(stmts, rdf.Statement{
			S: rdf.NewIRI(fmt.Sprintf("n%04d", i)),
			P: rdf.NewIRI("edge"),
			O: rdf.NewIRI(fmt.Sprintf("n%04d", i+1)),
		})
	}
	newGraph := func() *rdf.Graph {
		g := rdf.NewGraph()
		if _, err := g.AddAll(stmts); err != nil {
			t.Fatal(err)
		}
		return g
	}

	// Correctness: exact closure, each fact derived exactly once.
	g := newGraph()
	stats, err := rdf.ForwardChainStats(g, rules, n+100)
	if err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; stats.Derived != want {
		t.Fatalf("semi-naive closure derived %d facts, want C(%d,2) = %d", stats.Derived, n, want)
	}
	if stats.Derivations != stats.Derived {
		t.Errorf("semi-naive fired %d rules for %d facts — re-derivation crept back in", stats.Derivations, stats.Derived)
	}
	if again, err := rdf.ForwardChain(g, rules, 0); err != nil || again != 0 {
		t.Errorf("re-chaining the converged graph derived %d facts, err %v", again, err)
	}

	// Naive and semi-naive must add the identical fact set when capped at
	// the same round count (both buffer a round's conclusions).
	const roundCap = 60
	gSemi, gNaive := newGraph(), newGraph()
	semiStats, _ := rdf.ForwardChainStats(gSemi, rules, roundCap)
	naiveStats, _ := rdf.ForwardChainNaive(gNaive, rules, roundCap)
	if semiStats.Derived != naiveStats.Derived || gSemi.Len() != gNaive.Len() {
		t.Errorf("round-capped engines diverged: semi %+v (len %d), naive %+v (len %d)",
			semiStats, gSemi.Len(), naiveStats, gNaive.Len())
	}
	if naiveStats.Derivations <= semiStats.Derivations {
		t.Errorf("naive fired %d rules vs semi-naive %d — naive should re-derive prior rounds",
			naiveStats.Derivations, semiStats.Derivations)
	}

	if raceEnabled {
		t.Skip("timing leg skipped under the race detector: instrumentation distorts relative costs")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	semiRun := func() time.Duration {
		g := newGraph()
		start := time.Now()
		rdf.ForwardChainStats(g, rules, roundCap)
		return time.Since(start)
	}
	baselineRun := func() time.Duration {
		ref := rdfref.New()
		for _, s := range stmts {
			ref.MustAdd(s)
		}
		start := time.Now()
		rdfref.ForwardChain(ref, rules, roundCap)
		return time.Since(start)
	}
	measure := func(rounds int) (semiBest, baseBest time.Duration) {
		semiBest, baseBest = 1<<62, 1<<62
		for r := 0; r < rounds; r++ {
			runtime.GC()
			var se, ba time.Duration
			if r%2 == 0 {
				se, ba = semiRun(), baselineRun()
			} else {
				ba, se = baselineRun(), semiRun()
			}
			semiBest, baseBest = min(semiBest, se), min(baseBest, ba)
		}
		return semiBest, baseBest
	}
	semiBest, baseBest := measure(2)
	if baseBest < 5*semiBest {
		semiBest, baseBest = measure(3) // could be interference; re-measure before failing
	}
	t.Logf("round-capped (%d rounds) N=%d chain: semi-naive %v, pre-PR naive baseline %v, speedup %.1fx",
		roundCap, n, semiBest, baseBest, float64(baseBest)/float64(semiBest))
	if baseBest < 5*semiBest {
		t.Errorf("semi-naive (%v) is only %.1fx faster than the pre-PR naive baseline (%v), want >= 5x",
			semiBest, float64(baseBest)/float64(semiBest), baseBest)
	}
}

// TestSearchShape is the tier-1 guard for the dictionary-coded block-max
// search engine (PR "intern, prune, and expand the search substrate"):
// on a 50k-doc corpus at k=10 the pruned evaluator must return exactly
// the exhaustive baseline's top-k (same docs, same tie-break order) and
// beat the frozen seed engine by >= 5x.
func TestSearchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("search guard skipped in -short mode")
	}
	const docs = 50000
	const limit = 10
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 18, NumDocs: docs})
	idx := search.BuildIndex(corpus)
	ref := searchref.BuildIndex(corpus)
	refParams := searchref.Params{Scoring: searchref.BM25, K1: 1.2, B: 0.75, TitleBoost: 2}
	queries := []struct {
		q    string
		news bool
	}{
		{"market", false},
		{"market technology growth investment", false},
		{"acme corporation earnings", false},
		{"germany trade policy", true},
		{"committee schedule conference", false},
	}

	// Correctness: pruned top-k == exhaustive top-k, exactly.
	for _, qc := range queries {
		got := idx.Search(qc.q, search.TuningG, search.Options{Limit: limit, NewsOnly: qc.news})
		want := ref.Search(qc.q, refParams, searchref.Options{Limit: limit, NewsOnly: qc.news})
		if len(got) != len(want) {
			t.Fatalf("q=%q: pruned returned %d results, exhaustive %d", qc.q, len(got), len(want))
		}
		for i := range got {
			if got[i].DocID != want[i].DocID {
				t.Fatalf("q=%q rank %d: pruned %s, exhaustive %s", qc.q, i, got[i].DocID, want[i].DocID)
			}
		}
	}

	if raceEnabled {
		t.Skip("timing leg skipped under the race detector: instrumentation distorts relative costs")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	prunedRun := func() time.Duration {
		start := time.Now()
		for _, qc := range queries {
			idx.Search(qc.q, search.TuningG, search.Options{Limit: limit, NewsOnly: qc.news})
		}
		return time.Since(start)
	}
	baselineRun := func() time.Duration {
		start := time.Now()
		for _, qc := range queries {
			ref.Search(qc.q, refParams, searchref.Options{Limit: limit, NewsOnly: qc.news})
		}
		return time.Since(start)
	}
	measure := func(rounds int) (prunedBest, baseBest time.Duration) {
		prunedBest, baseBest = 1<<62, 1<<62
		for r := 0; r < rounds; r++ {
			runtime.GC()
			var pr, ba time.Duration
			if r%2 == 0 {
				pr, ba = prunedRun(), baselineRun()
			} else {
				ba, pr = baselineRun(), prunedRun()
			}
			prunedBest, baseBest = min(prunedBest, pr), min(baseBest, ba)
		}
		return prunedBest, baseBest
	}
	prunedBest, baseBest := measure(2)
	if baseBest < 5*prunedBest {
		prunedBest, baseBest = measure(3) // could be interference; re-measure before failing
	}
	t.Logf("%d-doc corpus, %d queries at k=%d: pruned %v, seed baseline %v, speedup %.1fx",
		docs, len(queries), limit, prunedBest, baseBest, float64(baseBest)/float64(prunedBest))
	if baseBest < 5*prunedBest {
		t.Errorf("pruned engine (%v) is only %.1fx faster than the seed baseline (%v), want >= 5x",
			prunedBest, float64(baseBest)/float64(prunedBest), baseBest)
	}
}

// TestNLUShape is the tier-1 guard for the interned NLU hot path (PR
// "unify term interning into a shared symbol-table layer and rebuild the
// NLU hot path on token IDs"): on a generated corpus every
// Engine.Analyze output must be bit-identical to the frozen
// pre-interning engines in nluref — including the profiles whose
// drop/spurious/noise paths consume randomness — and the interned path
// must deliver >= 2x the reference's documents/sec with >= 5x fewer
// steady-state heap allocations per document.
func TestNLUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("NLU guard skipped in -short mode")
	}
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 19, NumDocs: 200})
	texts := make([]string, len(corpus.Docs))
	for i, d := range corpus.Docs {
		texts[i] = d.Body
	}
	engines := []*nlu.Engine{
		nlu.NewEngine(nlu.ProfileAlpha), nlu.NewEngine(nlu.ProfileBeta), nlu.NewEngine(nlu.ProfileGamma),
	}
	refs := []*nluref.Engine{
		nluref.NewEngine(nluref.ProfileAlpha), nluref.NewEngine(nluref.ProfileBeta), nluref.NewEngine(nluref.ProfileGamma),
	}

	// Correctness: bit-identical analyses on every document and profile.
	// This pass also warms the interned path's pooled scratch.
	for i, text := range texts {
		for j := range engines {
			got, err := json.Marshal(engines[j].Analyze(text))
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(refs[j].Analyze(text))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("doc %d profile %s diverged\n got %s\nwant %s",
					i, engines[j].Profile().Name, got, want)
			}
		}
	}

	if raceEnabled {
		t.Skip("timing and allocation legs skipped under the race detector: instrumentation distorts relative costs")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Allocations: steady state (scratch pool warm), averaged per
	// document across all three profiles. GC stays disabled so the pool
	// is not drained mid-measurement.
	sample := texts[:20]
	perDoc := func(run func(string)) float64 {
		return testing.AllocsPerRun(3, func() {
			for _, text := range sample {
				run(text)
			}
		}) / float64(3*len(sample))
	}
	newAllocs := perDoc(func(text string) {
		for _, e := range engines {
			e.Analyze(text)
		}
	})
	refAllocs := perDoc(func(text string) {
		for _, r := range refs {
			r.Analyze(text)
		}
	})
	t.Logf("steady-state allocs/doc (3 profiles): interned %.1f, reference %.1f, reduction %.1fx",
		newAllocs, refAllocs, refAllocs/newAllocs)
	if newAllocs*5 > refAllocs {
		t.Errorf("interned path allocates %.1f/doc vs reference %.1f/doc, want >= 5x reduction",
			newAllocs, refAllocs)
	}
	if newAllocs > 12 {
		t.Errorf("interned path steady state = %.1f allocs/doc, want <= 12 (pool or interning regression)", newAllocs)
	}

	newRun := func() time.Duration {
		start := time.Now()
		for _, text := range texts {
			for _, e := range engines {
				e.Analyze(text)
			}
		}
		return time.Since(start)
	}
	refRun := func() time.Duration {
		start := time.Now()
		for _, text := range texts {
			for _, r := range refs {
				r.Analyze(text)
			}
		}
		return time.Since(start)
	}
	measure := func(rounds int) (newBest, refBest time.Duration) {
		newBest, refBest = 1<<62, 1<<62
		for r := 0; r < rounds; r++ {
			runtime.GC()
			var nw, rf time.Duration
			if r%2 == 0 {
				nw, rf = newRun(), refRun()
			} else {
				rf, nw = refRun(), newRun()
			}
			newBest, refBest = min(newBest, nw), min(refBest, rf)
		}
		return newBest, refBest
	}
	newBest, refBest := measure(2)
	if refBest < 2*newBest {
		newBest, refBest = measure(3) // could be interference; re-measure before failing
	}
	docs := float64(len(texts))
	t.Logf("%d docs x 3 profiles: interned %v (%.0f docs/s), reference %v (%.0f docs/s), speedup %.2fx",
		len(texts), newBest, docs/newBest.Seconds(), refBest, docs/refBest.Seconds(),
		float64(refBest)/float64(newBest))
	if refBest < 2*newBest {
		t.Errorf("interned path (%v) is only %.2fx the reference's throughput (%v), want >= 2x",
			newBest, float64(refBest)/float64(newBest), refBest)
	}
}
