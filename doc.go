// Package repro reproduces "Supporting Data Analytics Applications Which
// Utilize Cognitive Services" (Arun Iyengar, ICDCS 2017) as a Go library:
// a rich SDK for invoking cognitive and cloud services — with monitoring,
// ranking, retry/failover, caching, quotas, latency prediction, and
// sync/async invocation — plus a personalized knowledge base layered on
// top, and every substrate both need (NLU engines, search engines, a
// synthetic web, a relational engine, an RDF store with reasoners,
// key-value and cloud stores, codecs, and statistics).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-claim-by-claim evaluation. The benchmarks in
// bench_test.go regenerate every experiment table; cmd/benchmark prints
// them.
package repro
